"""Compare two snapshot trees, category by category, in lattice order.

Artifacts are paired by corpus-relative path and compared *semantically*:

* decisions by identity ``(kind, function, param_index)`` — lost, gained,
  or changed (same identity, different justification/span);
* lattice values through the ``B_e`` order ``⊑`` — a head value strictly
  above the base value is a **weakening** (the analysis claims less), one
  strictly below is a strengthening; string equality would miscount both
  directions as the same kind of churn;
* heap-liveness facts through the live-depth order ``0 ⊑ 1 ⊑ … ⊑ ⊤``: a
  binder whose joined use depth goes up — or a fact set that degrades to
  all-``⊤`` — is a **weakening** (the liveness-directed collector loses
  reclaim opportunities), a depth that goes down is a strengthening;
* diagnostics by :meth:`repro.check.diagnostics.Diagnostic.identity`
  (rule + span + context, not message wording);
* machine code by listing digest, with per-opcode size deltas.

Categories split into a **gate set** (regressions: lost decisions, lost
files, weakened lattice values, new error findings, decertifications) and
benign churn; ``Comparison.exit_code()`` maps that to the CLI taxonomy —
0 identical, 3 benign differences only, 4 gated regressions — so CI can
fail a PR for losing a decision while tolerating a resolved hint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.escape.lattice import Escapement

from repro.diff.snapshot import ARTIFACT_SCHEMA, ARTIFACT_SUFFIX, INDEX_NAME

#: Category names, in reporting order.  ``*_head``/``new``/``lost``/
#: ``weakened`` lean regression; the rest are churn.
CATEGORIES = (
    "file_missing_head",
    "file_missing_base",
    "file_error_new",
    "file_error_resolved",
    "decision_lost",
    "decision_gained",
    "decision_changed",
    "decision_decertified",
    "lattice_weakened",
    "lattice_strengthened",
    "liveness_weakened",
    "liveness_strengthened",
    "binding_changed",
    "sharing_changed",
    "diagnostic_new_error",
    "diagnostic_new",
    "diagnostic_resolved",
    "code_changed",
    "provenance_changed",
)

#: The default regression gate: what CI fails on.
DEFAULT_GATE = frozenset(
    {
        "file_missing_head",
        "file_error_new",
        "decision_lost",
        "decision_decertified",
        "lattice_weakened",
        "liveness_weakened",
        "diagnostic_new_error",
    }
)


class CompareError(ValueError):
    """A tree cannot be compared (missing, empty, or schema-skewed)."""


@dataclass
class Comparison:
    """The categorized outcome of one tree-vs-tree compare."""

    base: str
    head: str
    compared: int
    entries: dict[str, list[dict]] = field(default_factory=dict)
    gate: frozenset = DEFAULT_GATE

    def add(self, category: str, **entry) -> None:
        assert category in CATEGORIES, category
        self.entries.setdefault(category, []).append(entry)

    def counts(self) -> dict[str, int]:
        return {cat: len(self.entries.get(cat, [])) for cat in CATEGORIES}

    @property
    def empty(self) -> bool:
        return not any(self.entries.values())

    def gated(self) -> list[str]:
        """The gate categories that actually fired, in reporting order."""
        return [c for c in CATEGORIES if c in self.gate and self.entries.get(c)]

    def exit_code(self) -> int:
        """0 identical; 4 gated regressions present; 3 benign churn only."""
        if self.empty:
            return 0
        return 4 if self.gated() else 3

    def to_json(self) -> dict:
        return {
            "base": self.base,
            "head": self.head,
            "compared": self.compared,
            "counts": {k: v for k, v in self.counts().items() if v},
            "gate": sorted(self.gate),
            "gated": self.gated(),
            "exit_code": self.exit_code(),
            "categories": {
                cat: self.entries[cat]
                for cat in CATEGORIES
                if self.entries.get(cat)
            },
        }

    def render(self) -> str:
        """The human summary: counts first, then every entry, regressions
        leading."""
        lines = [f"compared {self.compared} artifact(s): {self.base} -> {self.head}"]
        if self.empty:
            lines.append("no differences")
            return "\n".join(lines) + "\n"
        for category in CATEGORIES:
            entries = self.entries.get(category)
            if not entries:
                continue
            marker = "!" if category in self.gate else "~"
            lines.append(f"{marker} {category}: {len(entries)}")
            for entry in entries:
                detail = ", ".join(
                    f"{key}={value}" for key, value in entry.items() if value is not None
                )
                lines.append(f"    {detail}")
        fired = self.gated()
        lines.append(
            f"gate: {'FAIL (' + ', '.join(fired) + ')' if fired else 'pass'}"
        )
        return "\n".join(lines) + "\n"


def load_tree(root: "str | Path") -> dict[str, dict]:
    """Artifacts of one snapshot tree, keyed by corpus-relative path."""
    base = Path(root)
    if not base.is_dir():
        raise CompareError(f"{base}: not a snapshot directory")
    tree: dict[str, dict] = {}
    for path in sorted(base.rglob("*" + ARTIFACT_SUFFIX)):
        if path.name == INDEX_NAME:
            continue
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise CompareError(f"{path}: not a JSON artifact: {error}") from error
        if not isinstance(document, dict) or "schema" not in document:
            continue  # foreign JSON in the tree; not ours to compare
        if document["schema"] != ARTIFACT_SCHEMA:
            raise CompareError(
                f"{path}: artifact schema {document['schema']} != "
                f"{ARTIFACT_SCHEMA}; re-snapshot with this toolchain"
            )
        tree[document.get("path", path.stem)] = document
    if not tree:
        raise CompareError(f"{base}: no artifacts found")
    return tree


def _escapement(value: dict) -> Escapement:
    return Escapement(value["escapes"], value["escape_depth"])


def _decision_key(record: dict) -> tuple:
    return (record["kind"], record["function"], record["param_index"])


def _compare_decisions(rel: str, base: dict, head: dict, out: Comparison) -> None:
    base_map = {_decision_key(r): r for r in base.get("decisions", [])}
    head_map = {_decision_key(r): r for r in head.get("decisions", [])}
    head_decert = {_decision_key(r): r for r in head.get("decertified", [])}
    for key, record in base_map.items():
        if key in head_map:
            other = head_map[key]
            if (
                record["justification"] != other["justification"]
                or record["span"] != other["span"]
            ):
                out.add(
                    "decision_changed",
                    path=rel,
                    kind=key[0],
                    function=key[1],
                    param_index=key[2],
                    base=record["justification"],
                    head=other["justification"],
                )
            continue
        category = "decision_decertified" if key in head_decert else "decision_lost"
        entry = {
            "path": rel,
            "kind": key[0],
            "function": key[1],
            "param_index": key[2],
            "span": record["span"],
            "justification": record["justification"],
        }
        if key in head_decert:
            entry["condemned_by"] = head_decert[key].get("condemned_by", [])
        out.add(category, **entry)
    for key, record in head_map.items():
        if key not in base_map:
            out.add(
                "decision_gained",
                path=rel,
                kind=key[0],
                function=key[1],
                param_index=key[2],
                span=record["span"],
                justification=record["justification"],
            )


def _compare_bindings(rel: str, base: dict, head: dict, out: Comparison) -> None:
    base_bindings = base.get("bindings", {})
    head_bindings = head.get("bindings", {})
    for name in sorted(set(base_bindings) | set(head_bindings)):
        b = base_bindings.get(name)
        h = head_bindings.get(name)
        if b is None or h is None:
            out.add(
                "binding_changed",
                path=rel,
                binding=name,
                change="added" if b is None else "removed",
            )
            continue
        if b.get("error") or h.get("error"):
            if b.get("error") != h.get("error"):
                out.add(
                    "binding_changed",
                    path=rel,
                    binding=name,
                    change="analysis-error",
                    base=b.get("error"),
                    head=h.get("error"),
                )
            continue
        base_params = {p["index"]: p for p in b.get("params", [])}
        head_params = {p["index"]: p for p in h.get("params", [])}
        for index in sorted(set(base_params) | set(head_params)):
            bp, hp = base_params.get(index), head_params.get(index)
            if bp is None or hp is None:
                out.add(
                    "binding_changed",
                    path=rel,
                    binding=name,
                    change=f"param {index} {'appeared' if bp is None else 'vanished'}",
                )
                continue
            base_value, head_value = _escapement(bp), _escapement(hp)
            if base_value == head_value:
                continue
            weakened = base_value.leq(head_value)
            out.add(
                "lattice_weakened" if weakened else "lattice_strengthened",
                path=rel,
                binding=name,
                param_index=index,
                base=bp["value"],
                head=hp["value"],
            )
        if (
            b.get("fingerprint") != h.get("fingerprint")
            and base_params
            and {i: base_params[i]["value"] for i in base_params}
            == {i: p["value"] for i, p in head_params.items()}
        ):
            # Same surface lattice values, different extensional image —
            # still a semantic change worth surfacing.
            out.add(
                "binding_changed", path=rel, binding=name, change="fingerprint"
            )
        elif not base_params and b.get("fingerprint") != h.get("fingerprint"):
            out.add(
                "binding_changed", path=rel, binding=name, change="fingerprint"
            )
    if base.get("sharing") != head.get("sharing"):
        changed = sorted(
            name
            for name in set(base.get("sharing", {})) | set(head.get("sharing", {}))
            if base.get("sharing", {}).get(name) != head.get("sharing", {}).get(name)
        )
        out.add("sharing_changed", path=rel, bindings=changed)


def _depth_leq(a: "int | None", b: "int | None") -> bool:
    """``a ⊑ b`` in the live-depth order (``None`` is ``⊤``)."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


def _decode_depth(text: str) -> "int | None":
    return None if text == "top" else int(text)


def _compare_liveness(rel: str, base: dict, head: dict, out: Comparison) -> None:
    base_live = base.get("liveness", {})
    head_live = head.get("liveness", {})
    if base_live == head_live:
        return
    if not base_live.get("degraded") and head_live.get("degraded"):
        out.add("liveness_weakened", path=rel, change="facts degraded to ⊤")
        return
    if base_live.get("degraded") and not head_live.get("degraded"):
        out.add("liveness_strengthened", path=rel, change="facts recovered")
        return
    base_use = base_live.get("use", {})
    head_use = head_live.get("use", {})
    for name in sorted(set(base_use) & set(head_use)):
        if base_use[name] == head_use[name]:
            continue
        b, h = _decode_depth(base_use[name]), _decode_depth(head_use[name])
        out.add(
            "liveness_weakened" if _depth_leq(b, h) else "liveness_strengthened",
            path=rel,
            binding=name,
            base=base_use[name],
            head=head_use[name],
        )


def _finding_key(finding: dict) -> tuple:
    return (finding["rule"], finding["span"] or "", finding["context"])


def _compare_diagnostics(rel: str, base: dict, head: dict, out: Comparison) -> None:
    base_findings = {
        _finding_key(f): f for f in base.get("diagnostics", {}).get("findings", [])
    }
    head_findings = {
        _finding_key(f): f for f in head.get("diagnostics", {}).get("findings", [])
    }
    for key in sorted(set(head_findings) - set(base_findings)):
        finding = head_findings[key]
        category = (
            "diagnostic_new_error"
            if finding["severity"] == "error"
            else "diagnostic_new"
        )
        out.add(
            category,
            path=rel,
            rule=finding["rule"],
            severity=finding["severity"],
            span=finding["span"],
            context=finding["context"],
        )
    for key in sorted(set(base_findings) - set(head_findings)):
        finding = base_findings[key]
        out.add(
            "diagnostic_resolved",
            path=rel,
            rule=finding["rule"],
            severity=finding["severity"],
            span=finding["span"],
            context=finding["context"],
        )


def _compare_machine(rel: str, base: dict, head: dict, out: Comparison) -> None:
    base_machine = base.get("machine", {})
    head_machine = head.get("machine", {})
    if base_machine.get("digest") == head_machine.get("digest"):
        return
    base_ops = base_machine.get("by_opcode", {})
    head_ops = head_machine.get("by_opcode", {})
    deltas = {
        op: head_ops.get(op, 0) - base_ops.get(op, 0)
        for op in sorted(set(base_ops) | set(head_ops))
        if head_ops.get(op, 0) != base_ops.get(op, 0)
    }
    out.add(
        "code_changed",
        path=rel,
        base_instructions=base_machine.get("instructions", 0),
        head_instructions=head_machine.get("instructions", 0),
        delta=head_machine.get("instructions", 0) - base_machine.get("instructions", 0),
        by_opcode=deltas,
    )


def compare_artifacts(rel: str, base: dict, head: dict, out: Comparison) -> None:
    """Fold one artifact pair's differences into ``out``."""
    if not base.get("ok") or not head.get("ok"):
        if base.get("ok") and not head.get("ok"):
            out.add("file_error_new", path=rel, error=head.get("error", ""))
        elif not base.get("ok") and head.get("ok"):
            out.add("file_error_resolved", path=rel)
        elif base.get("error") != head.get("error"):
            out.add(
                "file_error_new",
                path=rel,
                error=head.get("error", ""),
                previous=base.get("error", ""),
            )
        return
    if base.get("provenance") != head.get("provenance"):
        out.add(
            "provenance_changed",
            path=rel,
            base=base.get("provenance"),
            head=head.get("provenance"),
        )
    _compare_bindings(rel, base, head, out)
    _compare_liveness(rel, base, head, out)
    _compare_decisions(rel, base, head, out)
    _compare_diagnostics(rel, base, head, out)
    _compare_machine(rel, base, head, out)


def compare_trees(
    base_dir: "str | Path",
    head_dir: "str | Path",
    gate: "frozenset | None" = None,
) -> Comparison:
    """Compare two snapshot trees; raises :class:`CompareError` for
    unusable inputs, never for mere differences."""
    base_tree = load_tree(base_dir)
    head_tree = load_tree(head_dir)
    out = Comparison(
        base=str(base_dir),
        head=str(head_dir),
        compared=len(set(base_tree) & set(head_tree)),
        gate=DEFAULT_GATE if gate is None else frozenset(gate),
    )
    for rel in sorted(set(base_tree) | set(head_tree)):
        if rel not in head_tree:
            out.add("file_missing_head", path=rel)
        elif rel not in base_tree:
            out.add("file_missing_base", path=rel)
        else:
            compare_artifacts(rel, base_tree[rel], head_tree[rel], out)
    return out
