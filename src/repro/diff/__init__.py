"""``repro.diff`` — the corpus-scale differential regression harness.

The paper's value proposition is that escape facts *license* storage
optimizations; the scariest regression is therefore a silent one — a
change that loses a decision, weakens a lattice value, or alters machine
code on some program nobody hand-tests.  This package turns the repo's
existing differential methodology (legacy vs. worklist, fact by fact) on
its third axis: **two git revisions of the whole toolchain**, compared
over a generated corpus.

* :mod:`repro.diff.snapshot` — run analyze + optimize + check over a
  corpus and write one canonical JSON artifact per file (lattice
  fingerprints and values, sharing classes, audit-certified optimization
  decisions, checker findings, machine-code digest and instruction
  counts), byte-stable across processes and hash seeds;
* :mod:`repro.diff.compare` — pair two artifact trees by corpus-relative
  path and report a categorized summary ordered by the lattice's own ⊑,
  with per-category gating so CI can fail on "decisions lost" while
  tolerating benign churn;
* :mod:`repro.diff.corpus` — materialize the property suite's program
  distribution into a committed, seed-manifested ``examples/generated/``
  corpus.
"""

from repro.diff.compare import Comparison, compare_trees
from repro.diff.snapshot import snapshot_corpus, snapshot_program

__all__ = [
    "Comparison",
    "compare_trees",
    "snapshot_corpus",
    "snapshot_program",
]
