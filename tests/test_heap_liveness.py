"""The interprocedural heap-liveness analysis (`repro.analysis.heap_liveness`).

Unit tests for the live-depth lattice and per-binding summaries, the
whole-program facts (standalone and through the session/store-memoized
facade), the AUD004/LNT006 consumers, and the serialization round trip.
"""

import pytest

from repro.analysis.heap_liveness import (
    DEFAULT_CAP,
    HeapLivenessFacts,
    LivenessResults,
    analyze_program,
    decode_summary,
    degraded_facts,
    donor_live_after,
    encode_summary,
)
from repro.lang.parser import parse_program


def facts_for(source: str) -> HeapLivenessFacts:
    return analyze_program(parse_program(source))


class TestUseDepths:
    def test_dead_binding_has_depth_zero(self):
        facts = facts_for("xs = [1, 2, 3];\n7")
        assert facts.use_depth("xs") == 0
        assert not facts.degraded

    def test_null_only_use_has_depth_zero(self):
        facts = facts_for("f l = if null l then 1 else 2;\nxs = [1, 2];\nf xs")
        assert facts.use_depth("xs") == 0
        # ... and the interprocedural summary records why: f never reads
        # its parameter's cells.
        summary = facts.binding_fact("f")
        assert summary is not None and summary.params == (0,)

    def test_spine_walk_has_depth_one(self):
        facts = facts_for(
            "length l = if null l then 0 else 1 + length (cdr l);\n"
            "xs = [1, 2, 3];\nlength xs"
        )
        assert facts.binding_fact("length").params == (1,)
        assert facts.use_depth("xs") == 1

    def test_direct_car_use_is_at_least_depth_one(self):
        facts = facts_for("xs = [1, 2];\ncar xs")
        depth = facts.use_depth("xs")
        assert depth is None or depth >= 1

    def test_unknown_name_is_top(self):
        facts = facts_for("xs = [1];\ncar xs")
        assert facts.use_depth("no-such-binder") is None

    def test_budget_map_covers_every_binder(self):
        facts = facts_for("f l = cdr l;\nxs = [1, 2];\nf xs")
        budgets = facts.budget_map()
        assert "f" in budgets and "l" in budgets and "xs" in budgets

    def test_facts_satisfy_the_results_protocol(self):
        assert isinstance(facts_for("xs = [1];\n7"), LivenessResults)


class TestInterproceduralSummaries:
    def test_callee_summary_flows_to_caller_argument(self):
        # g only null-tests, h walks the spine: the same literal bound to
        # two names gets two different budgets.
        facts = facts_for(
            "g l = if null l then 1 else 2;\n"
            "h l = if null l then 0 else 1 + h (cdr l);\n"
            "dead = [1, 2, 3];\nlive = [4, 5, 6];\n"
            "(g dead) + (h live)"
        )
        assert facts.use_depth("dead") == 0
        assert facts.use_depth("live") == 1

    def test_mutual_recursion_converges(self):
        facts = facts_for(
            "even l = if null l then true else odd (cdr l);\n"
            "odd l = if null l then false else even (cdr l);\n"
            "xs = [1, 2, 3, 4];\neven xs"
        )
        assert not facts.degraded
        assert facts.binding_fact("even").params == (1,)
        assert facts.use_depth("xs") == 1

    def test_unknown_application_degrades_argument_to_top(self):
        # Applying a parameter: no summary to consult, so the argument's
        # cells must stay unbounded.
        facts = facts_for("apply f x = f x;\nxs = [1, 2];\napply car xs")
        assert facts.use_depth("xs") is None


class TestDegradation:
    def test_budget_exhaustion_degrades_not_raises(self):
        program = parse_program(
            "length l = if null l then 0 else 1 + length (cdr l);\n"
            "xs = [1, 2, 3];\nlength xs"
        )
        facts = analyze_program(program, max_steps=1)
        assert facts.degraded
        assert facts.use_depth("xs") is None
        assert facts.budget_map() == {}

    def test_degraded_facts_answer_top_for_everything(self):
        facts = degraded_facts(parse_program("xs = [1];\ncar xs"))
        assert facts.degraded
        assert facts.use_depth("xs") is None
        assert facts.budget_map() == {}


class TestSerialization:
    def test_summary_round_trip(self):
        facts = facts_for(
            "length l = if null l then 0 else 1 + length (cdr l);\n"
            "xs = [1, 2];\nlength xs"
        )
        summary = facts.binding_fact("length")
        assert decode_summary(encode_summary(summary)) == summary

    def test_to_json_is_stable_across_runs(self):
        src = (
            "g l = if null l then 1 else 2;\n"
            "h l = if null l then 0 else 1 + h (cdr l);\n"
            "xs = [1, 2, 3];\n(g xs) + (h xs)"
        )
        import json

        a = json.dumps(facts_for(src).to_json(), sort_keys=True)
        b = json.dumps(facts_for(src).to_json(), sort_keys=True)
        assert a == b

    def test_decode_rejects_garbage(self):
        with pytest.raises(Exception):
            decode_summary({"names": "nonsense"})


class TestSessionFacade:
    def test_warm_store_decodes_identical_facts(self, tmp_path):
        from repro.escape.analyzer import EscapeAnalysis
        from repro.store import AnalysisStore

        src = (
            "length l = if null l then 0 else 1 + length (cdr l);\n"
            "xs = [1, 2, 3];\nlength xs"
        )
        cold = EscapeAnalysis(
            parse_program(src), store=AnalysisStore(tmp_path)
        ).heap_liveness()
        warm = EscapeAnalysis(
            parse_program(src), store=AnalysisStore(tmp_path)
        ).heap_liveness()
        assert not cold.degraded
        assert cold.to_json() == warm.to_json()

    def test_facade_matches_standalone_budgets(self, tmp_path):
        from repro.escape.analyzer import EscapeAnalysis

        src = "f l = if null l then 1 else 2;\nxs = [1, 2];\nf xs"
        program = parse_program(src)
        session_facts = EscapeAnalysis(program).heap_liveness()
        assert session_facts.use_depth("xs") == 0


class TestDonorLiveAfter:
    def test_certifies_null_only_continuation(self):
        # After the dcons, the donor is only null-tested — the syntactic
        # scan sees a use, the interprocedural facts certify it dead.
        src = "f l = if null (dcons l 1 []) then (if null l then 1 else 2) else 3;\nf [9]"
        program = parse_program(src)
        facts = analyze_program(program)
        sites = [
            n
            for n in _walk_dcons(program.binding("f").expr)
        ]
        assert sites, "test program must contain a dcons site"
        assert (
            donor_live_after(program, "f", sites[0].uid, "l", facts) is False
        )

    def test_live_continuation_stays_live(self):
        src = "f l = if null (dcons l 1 []) then car l else 3;\nf [9]"
        program = parse_program(src)
        facts = analyze_program(program)
        sites = _walk_dcons(program.binding("f").expr)
        assert (
            donor_live_after(program, "f", sites[0].uid, "l", facts) is not False
        )

    def test_degraded_facts_answer_none(self):
        src = "f l = if null (dcons l 1 []) then 1 else 2;\nf [9]"
        program = parse_program(src)
        sites = _walk_dcons(program.binding("f").expr)
        assert (
            donor_live_after(
                program, "f", sites[0].uid, "l", degraded_facts(program)
            )
            is None
        )


def _walk_dcons(expr):
    from repro.lang.ast import App, Prim, uncurry_app, walk

    return [
        node
        for node in walk(expr)
        if isinstance(node, App)
        and isinstance(uncurry_app(node)[0], Prim)
        and uncurry_app(node)[0].name == "dcons"
        and len(uncurry_app(node)[1]) == 3
    ]


class TestCheckConsumers:
    def test_audit_certifies_null_only_donor(self):
        from repro.check.audit import audit_program

        src = "f l = if null (dcons l 1 []) then (if null l then 1 else 2) else 3;\nf [9]"
        diags = audit_program(parse_program(src))
        assert not any(d.rule.id == "AUD004" for d in diags)

    def test_audit_still_flags_genuinely_live_donor(self):
        from repro.check.audit import audit_program

        src = "f l = if null (dcons l 1 []) then car l else 3;\nf [9]"
        diags = audit_program(parse_program(src))
        assert any(d.rule.id == "AUD004" for d in diags)

    def test_lint_hints_dead_after_bind(self):
        from repro.check.lint import lint_program

        src = "xs = [1, 2, 3];\nf l = if null l then 1 else 2;\nf xs"
        diags = lint_program(parse_program(src))
        hits = [d for d in diags if d.rule.id == "LNT006"]
        assert len(hits) == 1 and hits[0].context == "xs"

    def test_lint_silent_on_live_binding(self):
        from repro.check.lint import lint_program

        src = "xs = [1, 2, 3];\ncar xs"
        diags = lint_program(parse_program(src))
        assert not any(d.rule.id == "LNT006" for d in diags)


class TestCollectorBudgetsEndToEnd:
    def test_liveness_collector_reclaims_dead_binding(self):
        from repro.semantics.interp import run_program

        src = "junk = [1, 2, 3, 4, 5, 6, 7, 8];\nf l = if null l then 10 else 20;\nf junk"
        program = parse_program(src)
        budgets = analyze_program(program).budget_map()
        assert budgets["junk"] == 0
        base, base_metrics = run_program(
            program, auto_gc=True, gc_threshold=4, sanitize=True
        )
        live, live_metrics = run_program(
            program,
            auto_gc=True,
            gc_threshold=4,
            sanitize=True,
            collector="liveness",
            liveness=budgets,
        )
        assert base == live == 20
        assert live_metrics.gc_swept > base_metrics.gc_swept

    def test_default_cap_is_sane(self):
        assert DEFAULT_CAP >= 2
