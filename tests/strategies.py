"""Hypothesis strategies that generate *well-typed* nml expressions.

``typed_expr(ty, env, depth)`` draws an expression of monotype ``ty`` under
an environment of typed variables, using literals, variables, arithmetic,
comparisons, conditionals, list and tuple constructors/destructors, and
beta-redexes.  ``list_function_program()`` wraps one generated body into a
single-parameter function over ``int list`` applied to a literal, giving
whole programs for end-to-end property tests (round-tripping, inference,
analysis termination, and the §3.5 safety property).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.lang.ast import (
    App,
    Binding,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
    apply_n,
    cons_list,
)
from repro.types.types import BOOL, INT, TFun, TList, TProd, Type

#: Types the generators know how to inhabit.
INT_LIST = TList(INT)
INT_LIST_LIST = TList(INT_LIST)
INT_PAIR = TProd(INT, INT)

_FRESH = st.integers(min_value=0, max_value=1_000_000)


def _prim_call(name: str, *args: Expr) -> Expr:
    return apply_n(Prim(name=name), *args)


@st.composite
def typed_expr(draw, ty: Type, env: dict[str, Type], depth: int = 3) -> Expr:
    """An expression of type ``ty`` under ``env`` (variables name→type)."""
    candidates = []

    # variables of the right type are always candidates
    matching = [name for name, var_ty in env.items() if var_ty == ty]
    if matching:
        candidates.append("var")

    if ty == INT:
        candidates.append("int_lit")
        if depth > 0:
            candidates += ["arith", "if", "fst_pair"]
            if any(var_ty == INT_LIST for var_ty in env.values()):
                candidates.append("car_list")
    elif ty == BOOL:
        candidates.append("bool_lit")
        if depth > 0:
            candidates += ["compare", "null", "if"]
    elif isinstance(ty, TList):
        candidates.append("nil")
        if depth > 0:
            candidates += ["cons", "literal_list", "if"]
            if any(var_ty == ty for var_ty in env.values()):
                candidates.append("cdr_same")
    elif isinstance(ty, TProd):
        if depth > 0:
            candidates.append("mkpair")
        else:
            candidates.append("mkpair_shallow")
    if depth > 0:
        candidates.append("beta_redex")

    choice = draw(st.sampled_from(candidates))
    recurse = lambda t, d=depth - 1: draw(typed_expr(t, env, d))  # noqa: E731

    if choice == "var":
        return Var(name=draw(st.sampled_from(matching)))
    if choice == "int_lit":
        return IntLit(value=draw(st.integers(min_value=-20, max_value=20)))
    if choice == "bool_lit":
        return BoolLit(value=draw(st.booleans()))
    if choice == "nil":
        return NilLit()
    if choice == "arith":
        op = draw(st.sampled_from(["+", "-", "*"]))
        return _prim_call(op, recurse(INT), recurse(INT))
    if choice == "compare":
        op = draw(st.sampled_from(["==", "<", "<=", ">", ">=", "<>"]))
        return _prim_call(op, recurse(INT), recurse(INT))
    if choice == "null":
        return _prim_call("null", recurse(INT_LIST))
    if choice == "car_list":
        lists = [n for n, t in env.items() if t == INT_LIST]
        # guarded car: if null l then fallback else car l
        name = draw(st.sampled_from(lists))
        return If(
            cond=_prim_call("null", Var(name=name)),
            then=recurse(INT),
            otherwise=_prim_call("car", Var(name=name)),
        )
    if choice == "cdr_same":
        assert isinstance(ty, TList)
        sources = [n for n, t in env.items() if t == ty]
        name = draw(st.sampled_from(sources))
        return If(
            cond=_prim_call("null", Var(name=name)),
            then=recurse(ty),
            otherwise=_prim_call("cdr", Var(name=name)),
        )
    if choice == "if":
        return If(cond=recurse(BOOL), then=recurse(ty), otherwise=recurse(ty))
    if choice == "cons":
        assert isinstance(ty, TList)
        return _prim_call("cons", recurse(ty.element), recurse(ty))
    if choice == "literal_list":
        assert isinstance(ty, TList)
        size = draw(st.integers(min_value=0, max_value=3))
        return cons_list([recurse(ty.element, 0) for _ in range(size)])
    if choice == "mkpair":
        assert isinstance(ty, TProd)
        return _prim_call("mkpair", recurse(ty.fst), recurse(ty.snd))
    if choice == "mkpair_shallow":
        assert isinstance(ty, TProd)
        return _prim_call(
            "mkpair", draw(typed_expr(ty.fst, env, 0)), draw(typed_expr(ty.snd, env, 0))
        )
    if choice == "fst_pair":
        return _prim_call("fst", draw(typed_expr(INT_PAIR, env, depth - 1)))
    if choice == "beta_redex":
        arg_ty = draw(st.sampled_from([INT, BOOL, INT_LIST]))
        param = f"v{draw(_FRESH)}"
        inner_env = dict(env)
        inner_env[param] = arg_ty
        body = draw(typed_expr(ty, inner_env, depth - 1))
        return App(fn=Lambda(param=param, body=body), arg=recurse(arg_ty))
    raise AssertionError(choice)


@st.composite
def analysis_budget(draw):
    """A (usually tight) :class:`~repro.robust.budget.AnalysisBudget`.

    Draws each limit independently, including ``None`` (unlimited) and
    values small enough to cut real queries short — the property tests
    assert that *whatever* the budget, a degraded answer stays ⊒ exact.
    """
    from repro.robust.budget import AnalysisBudget

    return AnalysisBudget(
        deadline_s=draw(st.sampled_from([None, 0.0, 10.0])),
        max_fixpoint_iterations=draw(st.sampled_from([None, 1, 2, 100])),
        max_eval_steps=draw(st.sampled_from([None, 1, 25, 500, 100_000])),
    )


@st.composite
def list_function_program(draw) -> tuple[Program, list[int]]:
    """A program ``f l = <body>; f <literal>`` with ``l : int list`` and a
    body of type int list or int; returns (program, the literal input)."""
    result_ty = draw(st.sampled_from([INT_LIST, INT]))
    body = draw(typed_expr(result_ty, {"l": INT_LIST}, depth=3))
    values = draw(st.lists(st.integers(min_value=-9, max_value=9), max_size=5))
    literal = cons_list([IntLit(value=v) for v in values])
    letrec = Letrec(
        bindings=(Binding("f", Lambda(param="l", body=body)),),
        body=App(fn=Var(name="f"), arg=literal),
    )
    from repro.lang.resolve import resolve_expr

    resolved = resolve_expr(letrec)
    assert isinstance(resolved, Letrec)
    return Program(letrec=resolved), values


def draw_seeded(strategy, seed: int):
    """One deterministic draw from ``strategy``: the same ``seed`` always
    yields the same value (on a fixed hypothesis version).

    This is what lets ``repro diff gen-corpus`` *materialize* the property
    suite's program distribution into a committed corpus: each manifest
    entry is a seed, and the corpus file is the pretty-printed program that
    seed draws.  The manifest also records each file's content hash, so a
    hypothesis upgrade that shifts the distribution is detected loudly
    instead of silently changing the corpus.
    """
    from random import Random

    from hypothesis.internal.conjecture.data import ConjectureData

    return ConjectureData(random=Random(seed)).draw(strategy)


def materialize_program(seed: int):
    """The generated corpus program for ``seed``: ``(program, values)``
    from one deterministic :func:`list_function_program` draw."""
    return draw_seeded(list_function_program(), seed)
