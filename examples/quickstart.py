"""Quickstart: parse an nml program, run the escape analysis, read the
results.

Run with:  python examples/quickstart.py
"""

from repro import analyze, parse_program, run_program

SOURCE = """
-- The paper's running example: list append.
append x y = if (null x) then y
             else cons (car x) (append (cdr x) y);

append [1, 2, 3] [4, 5]
"""


def main() -> None:
    program = parse_program(SOURCE)

    # Run it under the standard semantics first.
    result, metrics = run_program(program)
    print(f"program result: {result}")
    print(f"cons cells allocated: {metrics.heap_allocs}")
    print()

    # Now ask the escape analysis about append's parameters.
    analysis = analyze(program)
    for i in (1, 2):
        test = analysis.global_test("append", i)
        print(f"G(append, {i}) = {test.result}")
        print(f"  -> {test.describe()}")

    # The machine-readable form drives optimizations:
    first = analysis.global_test("append", 1)
    print()
    print(
        f"the top {first.non_escaping_spines} spine(s) of append's first "
        "argument can be stack-allocated or reused in place"
    )


if __name__ == "__main__":
    main()
