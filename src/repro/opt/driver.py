"""The optimization driver: from analysis facts to an explicit plan.

``plan_optimizations`` surveys a whole program and records every storage
decision the escape + sharing facts license, with its justification — the
artifact a compiler would act on (and a user can audit):

* *reuse* — function parameters whose non-escaping top spines have eligible
  DCONS sites (plus the Theorem 2 obligation the caller must discharge);
* *stack* — result-call arguments whose literal spines never escape the
  call (§A.3.1);
* *block* — result-call arguments produced by a top-level function whose
  product's top spine dies with the call (§A.3.3).

``apply_plan`` then performs the safe subset mechanically: all reuse
specializations are added, body calls are redirected to them when the
actual argument is a literal (fresh, hence unshared), and the stack/block
rewrites are applied when their decisions are present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sharing import sharing_global
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.ast import (
    App,
    Expr,
    NilLit,
    Prim,
    Program,
    Var,
    uncurry_app,
    uncurry_lambda,
)
from repro.lang.errors import NO_SPAN, AnalysisError, NmlError, OptimizationError, SourceSpan
from repro.obs import tracer as obs
from repro.opt.reuse import make_reuse_specialization, redirect_body_calls, select_reuse_sites
from repro.robust.errors import BudgetExceeded

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.query import AnalysisSession
    from repro.robust.budget import BudgetMeter


@dataclass(frozen=True)
class Decision:
    """One storage decision with its justification."""

    kind: str  # "reuse" | "stack" | "block"
    function: str  # the function owning the decision ("<body>" for the call)
    param_index: int
    justification: str
    obligation: str = ""  # what a caller must still establish (sharing)
    #: where the decision lands in the source: the first DCONS site for
    #: *reuse*, the argument expression for *stack*/*block* — the same span
    #: the auditor reports against, so a lost decision and the finding that
    #: killed it point at one place
    span: SourceSpan = NO_SPAN

    def __str__(self) -> str:
        text = f"[{self.kind}] {self.function} param {self.param_index}: {self.justification}"
        if self.obligation:
            text += f" (caller must ensure: {self.obligation})"
        return text


@dataclass
class OptimizationPlan:
    program: Program
    decisions: list[Decision] = field(default_factory=list)

    def by_kind(self, kind: str) -> list[Decision]:
        return [d for d in self.decisions if d.kind == kind]

    def summary(self) -> str:
        if not self.decisions:
            return "no storage optimization is licensed by the analysis\n"
        return "\n".join(str(d) for d in self.decisions) + "\n"


def _is_literal_chain(expr: Expr) -> bool:
    """Fresh, visible spine construction (list literal / cons chain)."""
    while True:
        if isinstance(expr, NilLit):
            return True
        if not isinstance(expr, App):
            return False
        head, args = uncurry_app(expr)
        if not (isinstance(head, Prim) and head.name == "cons" and len(args) == 2):
            return False
        expr = args[1]


def plan_optimizations(
    program: Program,
    meter: "BudgetMeter | None" = None,
    session: "AnalysisSession | None" = None,
) -> OptimizationPlan:
    """Survey the program and collect every licensed storage decision.

    ``meter`` (from :mod:`repro.robust.budget`) bounds the survey's work:
    budget breaches propagate — they are *not* swallowed like per-function
    analysis failures — so the hardened pipeline can degrade as a whole.

    ``session`` (from :mod:`repro.query`) lets the survey reuse an existing
    query session's solve and SCC caches; by default a fresh session scoped
    to this survey is created, which still lets the per-function global
    tests share one cached fixpoint.
    """
    with obs.span("plan"):
        return _plan_optimizations(program, meter, session)


def _plan_optimizations(
    program: Program,
    meter: "BudgetMeter | None",
    session: "AnalysisSession | None",
) -> OptimizationPlan:
    analysis = EscapeAnalysis(program, meter=meter, session=session)
    plan = OptimizationPlan(program=program)

    # -- reuse candidates per function ----------------------------------
    for name in program.binding_names():
        try:
            results = analysis.global_all(name)
        except BudgetExceeded:
            raise
        except (AnalysisError, NmlError):
            continue
        params, body = uncurry_lambda(program.binding(name).expr)
        for result in results:
            if result.param_spines < 1 or result.non_escaping_spines < 1:
                continue
            param = params[result.param_index - 1] if result.param_index <= len(params) else None
            if param is None:
                continue
            sites = select_reuse_sites(body, param, donor_type=result.param_type)
            if not sites:
                continue
            plan.decisions.append(
                Decision(
                    kind="reuse",
                    function=name,
                    param_index=result.param_index,
                    justification=(
                        f"top {result.non_escaping_spines} spine(s) never escape "
                        f"(G = {result.result}); {len(sites)} DCONS site(s)"
                    ),
                    obligation=(
                        f"the actual argument's top spine is unshared "
                        f"(Theorem 2 or freshness)"
                    ),
                    span=sites[0].span,
                )
            )

    # -- stack / block candidates on the result call ----------------------
    head, args = uncurry_app(program.body)
    if args and isinstance(head, Var):
        try:
            locals_ = analysis.local_test(program.body)
        except BudgetExceeded:
            raise
        except (AnalysisError, NmlError):
            locals_ = []
        for result, arg in zip(locals_, args):
            if result.param_spines < 1 or result.non_escaping_spines < 1:
                continue
            if _is_literal_chain(arg):
                plan.decisions.append(
                    Decision(
                        kind="stack",
                        function="<body>",
                        param_index=result.param_index,
                        justification=(
                            f"literal argument; top {result.non_escaping_spines} "
                            f"spine(s) die with the call (L = {result.result})"
                        ),
                        span=arg.span,
                    )
                )
                continue
            arg_head, arg_args = uncurry_app(arg)
            if (
                isinstance(arg_head, Var)
                and arg_head.name in program.binding_names()
                and arg_args
            ):
                plan.decisions.append(
                    Decision(
                        kind="block",
                        function=arg_head.name,
                        param_index=result.param_index,
                        justification=(
                            f"produced list's top {result.non_escaping_spines} "
                            f"spine(s) die with the consumer (L = {result.result})"
                        ),
                        span=arg.span,
                    )
                )

    for decision in plan.decisions:
        obs.emit(
            "decision",
            kind=decision.kind,
            function=decision.function,
            param=decision.param_index,
            justification=decision.justification,
        )
    return plan


def apply_reuse_decision(
    program: Program, decision: Decision
) -> tuple[Program, list[str]]:
    """Apply one *reuse* decision: add the specialization and, when the
    result call's actual argument is a literal (fresh, therefore unshared),
    redirect the body to it.  Raises ``OptimizationError`` if inapplicable;
    the input program is returned unchanged on failure paths above this
    call because every transformation builds a fresh program."""
    log: list[str] = []
    result = make_reuse_specialization(program, decision.function, decision.param_index)
    program = result.program
    log.append(f"added {result.new_name} ({result.rewritten_sites} DCONS site(s))")
    head, args = uncurry_app(program.body)
    body_callee = head.name if isinstance(head, Var) else None
    if (
        body_callee == decision.function
        and decision.param_index <= len(args)
        and _is_literal_chain(args[decision.param_index - 1])
    ):
        program = redirect_body_calls(program, decision.function, result.new_name)
        log.append(
            f"redirected the result call to {result.new_name} "
            "(literal argument is unshared)"
        )
    return program, log


def apply_stack_decision(program: Program) -> tuple[Program, list[str]]:
    """Apply the (single) stack-allocation rewrite of the result call."""
    from repro.opt.stack_alloc import stack_allocate_body

    result = stack_allocate_body(program)
    return result.program, [
        f"stack-allocated {result.annotated_sites} literal cons site(s)"
    ]


def apply_block_decision(
    program: Program, decision: Decision
) -> tuple[Program, list[str]]:
    """Apply one *block* decision: the producer's spine goes to a block."""
    from repro.opt.block_alloc import block_allocate_producer

    result = block_allocate_producer(program, decision.function)
    return result.program, [
        f"block-allocated {decision.function} ({result.annotated_sites} site(s))"
    ]


def apply_plan(plan: OptimizationPlan) -> tuple[Program, list[str]]:
    """Mechanically apply the plan's safe subset; returns the transformed
    program and a log of the steps taken.  Inapplicable steps are skipped
    and logged; the program is never left partially transformed because
    each step either returns a complete fresh program or raises."""
    program = plan.program
    log: list[str] = []

    for decision in plan.by_kind("reuse"):
        try:
            program, step_log = apply_reuse_decision(program, decision)
            log.extend(step_log)
            obs.emit("transform_applied", kind="reuse", detail="; ".join(step_log))
        except OptimizationError as error:
            log.append(f"skip reuse {decision.function}: {error.message}")
            obs.emit("transform_skipped", kind="reuse", reason=error.message)

    if plan.by_kind("stack"):
        try:
            program, step_log = apply_stack_decision(program)
            log.extend(step_log)
            obs.emit("transform_applied", kind="stack", detail="; ".join(step_log))
        except OptimizationError as error:
            log.append(f"skip stack allocation: {error.message}")
            obs.emit("transform_skipped", kind="stack", reason=error.message)

    for decision in plan.by_kind("block"):
        try:
            program, step_log = apply_block_decision(program, decision)
            log.extend(step_log)
            obs.emit("transform_applied", kind="block", detail="; ".join(step_log))
        except OptimizationError as error:
            log.append(f"skip block allocation of {decision.function}: {error.message}")
            obs.emit("transform_skipped", kind="block", reason=error.message)

    return program, log
