"""Engine selection for the escape-analysis fixpoint core.

Two interchangeable engines compute the Section-4 lattice values:

* ``"worklist"`` (the default) — :class:`~repro.escape.worklist.WorklistEvaluator`,
  which lowers each letrec binding to the flat IR of :mod:`repro.ir` and
  solves the fixpoint with a worklist: only bindings whose inputs changed
  are re-evaluated, and within a binding only the instructions whose
  dependencies changed are re-executed.
* ``"legacy"`` — :class:`~repro.escape.abstract.AbstractEvaluator`, the
  paper's Kleene iteration over the AST.  It is kept as the
  differential-testing oracle: on the same program both engines must
  produce bit-identical per-binding lattice fingerprints (the least
  fixpoint of monotone transfer functions does not depend on evaluation
  order), so any divergence is a bug in one of them.

The engine is an *analysis-relevant* configuration axis: every SCC
provenance digest (:func:`repro.query.scc_digest`) chains the engine name,
so results from different engines can never collide in the on-disk store.

``default_engine()`` resolves the process-wide default, which the CLI's
``--engine`` flag overrides via :func:`use_engine`; library callers pass
``engine=`` explicitly instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.lang.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from repro.escape.abstract import AbstractEvaluator
    from repro.escape.lattice import BeChain
    from repro.robust.budget import BudgetMeter

#: The engines the analysis core knows how to run.
ENGINES = ("legacy", "worklist")

#: The engine used when none is requested explicitly.
DEFAULT_ENGINE = "worklist"

_current_default = DEFAULT_ENGINE

#: The one deprecation text for the legacy engine, shared by every caller.
LEGACY_DEPRECATION = (
    "warning: --engine legacy is deprecated; it is kept only as the "
    "differential-testing oracle for the worklist engine"
)

_legacy_warned = False


def warn_legacy_engine(stream=None) -> bool:
    """Emit the legacy-engine deprecation warning **at most once per
    process** and return whether this call emitted it.

    Every driver-side entry point that resolves ``engine="legacy"`` (the
    CLI's ``--engine`` scope, the batch driver) funnels through here, so a
    fan-out over worker processes or repeated engine resolution cannot
    multiply the warning.  ``stream`` defaults to ``sys.stderr``.
    """
    global _legacy_warned
    if _legacy_warned:
        return False
    _legacy_warned = True
    import sys

    print(LEGACY_DEPRECATION, file=stream if stream is not None else sys.stderr)
    return True


def reset_legacy_warning() -> None:
    """Forget that the deprecation was emitted (test isolation hook)."""
    global _legacy_warned
    _legacy_warned = False


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise AnalysisError(
            f"unknown analysis engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def default_engine() -> str:
    """The engine used by sessions constructed without an explicit one."""
    return _current_default


@contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Scope a process-wide default engine (what ``--engine`` installs for
    the duration of one CLI command)."""
    global _current_default
    previous = _current_default
    _current_default = validate_engine(engine)
    try:
        yield engine
    finally:
        _current_default = previous


def make_evaluator(
    engine: str,
    chain: "BeChain",
    max_iterations: int | None = None,
    meter: "BudgetMeter | None" = None,
) -> "AbstractEvaluator":
    """Construct the evaluator for ``engine`` (both expose the same
    surface: ``eval``, ``solve_bindings``, ``steps``, ``traces``,
    ``iterates``, ``memo``, ``values_equal`` / ``value_leq``)."""
    validate_engine(engine)
    if engine == "worklist":
        from repro.escape.worklist import WorklistEvaluator

        return WorklistEvaluator(chain, max_iterations=max_iterations, meter=meter)
    from repro.escape.abstract import AbstractEvaluator

    return AbstractEvaluator(chain, max_iterations=max_iterations, meter=meter)
