"""Block allocation / reclamation (§A.3.3): the "local heap".

``ps (create_list n)``: the produced list cannot live in ps's activation
record (it exists before the activation does), but its spine can go into a
block freed all at once — without the GC ever traversing those cells.

Run with:  python examples/block_allocation.py
"""

from repro import prelude_program
from repro.bench.tables import render_table
from repro.opt.pipeline import paper_block_allocated
from repro.semantics.interp import Interpreter


def gc_profile(program, threshold):
    interp = Interpreter(auto_gc=True, gc_threshold=threshold)
    interp.run(program)
    return interp.metrics


def main() -> None:
    rows = []
    for n in (25, 50, 100, 200):
        threshold = 64
        base = prelude_program(["ps", "create_list"], f"ps (create_list {n})")
        base_metrics = gc_profile(base, threshold)

        optimized = paper_block_allocated(n)
        opt_metrics = gc_profile(optimized.program, threshold)

        rows.append(
            [
                n,
                base_metrics.gc_marked,
                opt_metrics.gc_marked,
                opt_metrics.block_reclaimed,
                base_metrics.heap_allocs - opt_metrics.heap_allocs,
            ]
        )

    print(
        render_table(
            [
                "n",
                "GC mark work (baseline)",
                "GC mark work (block)",
                "cells block-freed",
                "heap cells avoided",
            ],
            rows,
            title="ps (create_list n): block reclamation vs GC (threshold=64)",
        )
    )
    print()
    print("The whole block returns to the free list when ps finishes —")
    print("no per-cell traversal, exactly the 'local heap' of §A.3.3.")


if __name__ == "__main__":
    main()
