"""The optimization auditor: independent re-derivation of every storage
decision baked into a program.

The optimizers leave two kinds of footprints: ``dcons`` sites (the §6
in-place reuse) and region annotations (``alloc = "region"`` cons sites
under a ``region`` scope, §A.3.1/§A.3.3).  This pass does **not** trust the
optimizer's own plan or log — it re-derives, from the escape lattice values
(:class:`~repro.escape.analyzer.EscapeAnalysis`), the Theorem-2 sharing
facts (:func:`~repro.analysis.sharing.sharing_global`), and the liveness
scan (:mod:`repro.opt.liveness`), an independent justification for each
footprint, and reports:

* **errors** where no justification re-derives — an unsound transform
  (donor spine escapes, donor still live after the ``dcons``, two reuses of
  one donor on a single path, an unjustified region);
* **warnings** where soundness rests on an obligation the auditor cannot
  discharge statically (a call passes a possibly-shared argument into a
  donor position);
* **hints** where the analysis provably licenses an optimization the
  program does not use.
"""

from __future__ import annotations

from repro.analysis.sharing import sharing_global
from repro.check.diagnostics import CheckSeverity, Diagnostic, rule
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeResults
from repro.lang.ast import (
    App,
    Expr,
    If,
    Prim,
    Program,
    Var,
    apply_n,
    clone,
    transform,
    uncurry_app,
    uncurry_lambda,
    walk,
)
from repro.lang.errors import AnalysisError, NmlError
from repro.opt.liveness import var_used_after

AUD001 = rule(
    "AUD001",
    "dcons-donor-not-variable",
    CheckSeverity.ERROR,
    "audit",
    "a dcons donor is not a variable; no cell to legally recycle",
)
AUD002 = rule(
    "AUD002",
    "dcons-donor-not-parameter",
    CheckSeverity.ERROR,
    "audit",
    "a dcons donor is not a parameter of its function",
)
AUD003 = rule(
    "AUD003",
    "unsound-reuse-escape",
    CheckSeverity.ERROR,
    "audit",
    "a dcons donor's top spine may escape; reuse mutates live cells",
)
AUD004 = rule(
    "AUD004",
    "unsound-reuse-liveness",
    CheckSeverity.ERROR,
    "audit",
    "a dcons donor is still used after the reuse site",
)
AUD005 = rule(
    "AUD005",
    "double-reuse-on-path",
    CheckSeverity.ERROR,
    "audit",
    "two dcons sites recycle one donor on the same execution path",
)
AUD006 = rule(
    "AUD006",
    "sharing-obligation-open",
    CheckSeverity.WARNING,
    "audit",
    "a call passes a possibly-shared argument into a donor position",
)
AUD007 = rule(
    "AUD007",
    "unjustified-region",
    CheckSeverity.ERROR,
    "audit",
    "a stack/block region is not justified by the local escape test",
)
AUD008 = rule(
    "AUD008",
    "missed-reuse",
    CheckSeverity.HINT,
    "audit",
    "the analysis licenses an in-place reuse the program does not do",
)
AUD009 = rule(
    "AUD009",
    "missed-stack-alloc",
    CheckSeverity.HINT,
    "audit",
    "a literal argument's non-escaping spine could be stack-allocated",
)
AUD010 = rule(
    "AUD010",
    "reuse-unverifiable",
    CheckSeverity.ERROR,
    "audit",
    "the escape analysis cannot re-derive a justification for a dcons",
)


def _saturated_prim_sites(body: Expr, name: str, arity: int) -> list[App]:
    return [
        node
        for node in walk(body)
        if isinstance(node, App)
        and isinstance(uncurry_app(node)[0], Prim)
        and uncurry_app(node)[0].name == name  # type: ignore[union-attr]
        and len(uncurry_app(node)[1]) == arity
    ]


def _branch_chain(node: Expr, parents: dict[int, Expr]) -> dict[int, str]:
    chain: dict[int, str] = {}
    current = node
    while current.uid in parents:
        parent = parents[current.uid]
        if isinstance(parent, If):
            if current is parent.then:
                chain[parent.uid] = "then"
            elif current is parent.otherwise:
                chain[parent.uid] = "else"
        current = parent
    return chain


def _path_disjoint(a: Expr, b: Expr, parents: dict[int, Expr]) -> bool:
    """True iff some ``if`` separates ``a`` and ``b`` into opposite
    branches, so at most one evaluates per execution.  (Re-derived here —
    the audit must not trust the optimizer's own site selection.)"""
    chain_a = _branch_chain(a, parents)
    chain_b = _branch_chain(b, parents)
    return any(
        chain_b.get(if_uid) not in (None, side) for if_uid, side in chain_a.items()
    )


def _cdr_chain_base(expr: Expr) -> str | None:
    """The variable at the bottom of a ``cdr (cdr ... x)`` chain, if any."""
    while True:
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, App):
            head, args = uncurry_app(expr)
            if isinstance(head, Prim) and head.name == "cdr" and len(args) == 1:
                expr = args[0]
                continue
        return None


def _erase_dcons(program: Program) -> Program:
    """The program with every ``dcons x e1 e2`` back-substituted to
    ``cons e1 e2`` — the *specification* a reuse specialization claims to
    implement.  Escape and sharing facts must be re-derived on this erased
    program: in the transformed function the donor cell deliberately
    becomes part of the result (that is the optimization), so a test on the
    transformed body always reports the donor escaping.  What justifies the
    recycling is the erased function's fact — exactly what the optimizer
    had in hand when it decided."""

    def go(node: Expr) -> Expr | None:
        if isinstance(node, App):
            head, args = uncurry_app(node)
            if isinstance(head, Prim) and head.name == "dcons" and len(args) == 3:
                return apply_n(
                    Prim(span=head.span, name="cons"),
                    args[1],
                    args[2],
                    span=node.span,
                )
        return None

    letrec = transform(clone(program.letrec), go)
    return Program(letrec=letrec, source=program.source)  # type: ignore[arg-type]


def audit_program(program: Program) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    erased = _erase_dcons(program)
    analysis = EscapeAnalysis(erased)

    #: function -> donor parameter names with at least one dcons site
    donors_by_function: dict[str, set[str]] = {}
    #: function -> {param name -> 1-based index}
    param_index: dict[str, dict[str, int]] = {}
    #: function -> cached global test results (None = analysis failed)
    global_cache: dict[str, list | None] = {}
    #: lazily computed interprocedural heap-liveness facts (False = failed)
    liveness_cache: list = []

    def global_results(name: str):
        # Any engine failure — typed AnalysisError or an internal crash on
        # an exotic-but-parseable program — degrades to "unverifiable"
        # (AUD010 at the sites), never sinks the whole pass.
        if name not in global_cache:
            try:
                global_cache[name] = analysis.global_all(name)
            except (AnalysisError, NmlError):
                global_cache[name] = None
            except Exception:
                global_cache[name] = None
        return global_cache[name]

    def donor_dead_after(fn_name: str, site_uid: int, donor: str) -> bool:
        # Interprocedural sharpening of the AUD004 liveness justification:
        # heap-liveness facts (repro.analysis.heap_liveness) can certify a
        # donor dead past the reuse even when the syntactic scan sees a
        # later occurrence (e.g. a null test, or a call whose summary never
        # reads that parameter's cells).  Certifications only ever compose
        # by OR with the syntactic answer, so the audit never certifies
        # *fewer* decisions than before; any failure keeps the
        # conservative answer.
        if not liveness_cache:
            try:
                from repro.analysis.heap_liveness import analyze_program

                liveness_cache.append(analyze_program(program))
            except Exception:
                liveness_cache.append(None)
        facts = liveness_cache[0]
        if facts is None or facts.degraded:
            return False
        from repro.analysis.heap_liveness import donor_live_after

        try:
            return donor_live_after(program, fn_name, site_uid, donor, facts) is False
        except Exception:
            return False

    for binding in program.bindings:
        params, body = uncurry_lambda(binding.expr)
        param_index[binding.name] = {p: i for i, p in enumerate(params, start=1)}
        _audit_dcons_sites(
            binding.name,
            params,
            body,
            analysis,
            global_results,
            donor_dead_after,
            donors_by_function,
            out,
        )
        # Hints scan the erased body: a dcons the function already does is
        # not a missed opportunity, and fresh cons sites read identically.
        erased_body = uncurry_lambda(erased.binding(binding.name).expr)[1]
        _hint_missed_reuse(
            binding.name, params, erased_body, global_results, donors_by_function, out
        )

    _audit_sharing_obligations(
        program, analysis, donors_by_function, param_index, out
    )
    _audit_regions(erased, analysis, out)
    return out


def _audit_dcons_sites(
    name: str,
    params: list[str],
    body: Expr,
    analysis: EscapeResults,
    global_results,
    donor_dead_after,
    donors_by_function: dict[str, set[str]],
    out: list[Diagnostic],
) -> None:
    sites = _saturated_prim_sites(body, "dcons", 3)
    if not sites:
        return
    parents = {
        child.uid: node for node in walk(body) for child in node.children()
    }
    sites_by_donor: dict[str, list[App]] = {}
    for site in sites:
        donor = uncurry_app(site)[1][0]
        if not isinstance(donor, Var):
            out.append(
                Diagnostic(
                    AUD001,
                    "dcons donor must be a variable naming a live cell, "
                    f"got {type(donor).__name__}",
                    span=site.span,
                    context=name,
                )
            )
            continue
        if donor.name not in params:
            out.append(
                Diagnostic(
                    AUD002,
                    f"dcons donor {donor.name!r} is not a parameter of "
                    f"{name!r}; its escape behaviour has no global test",
                    span=site.span,
                    context=name,
                )
            )
            continue
        sites_by_donor.setdefault(donor.name, []).append(site)

    results = global_results(name)
    for donor, donor_sites in sites_by_donor.items():
        donors_by_function.setdefault(name, set()).add(donor)
        index = params.index(donor) + 1

        # -- escape justification (§4.1): the donated top spine must not
        #    escape any possible application of the function.
        if results is None:
            out.append(
                Diagnostic(
                    AUD010,
                    f"cannot analyze {name!r}; its dcons on {donor!r} is "
                    "unverifiable",
                    span=donor_sites[0].span,
                    context=name,
                )
            )
        elif index > len(results):
            out.append(
                Diagnostic(
                    AUD010,
                    f"no global escape fact for parameter {index} of {name!r}",
                    span=donor_sites[0].span,
                    context=name,
                )
            )
        else:
            fact = results[index - 1]
            if fact.param_spines < 1 or fact.non_escaping_spines < 1:
                out.append(
                    Diagnostic(
                        AUD003,
                        f"G({name}, {index}) = {fact.result}: every spine of "
                        f"donor {donor!r} may escape; recycling its cells "
                        "mutates data a caller can still reach",
                        span=donor_sites[0].span,
                        context=name,
                    )
                )

        # -- liveness justification (§6): no further use of the donor after
        #    the reuse site, on any path — certified either by the
        #    syntactic scan or by the interprocedural heap-liveness facts.
        for site in donor_sites:
            if var_used_after(body, site.uid, donor) is not False and not (
                donor_dead_after(name, site.uid, donor)
            ):
                out.append(
                    Diagnostic(
                        AUD004,
                        f"donor {donor!r} may be read after this dcons "
                        "recycles its cell",
                        span=site.span,
                        context=name,
                    )
                )

        # -- one reuse per donor per execution path.
        for i, first in enumerate(donor_sites):
            for second in donor_sites[i + 1 :]:
                if not _path_disjoint(first, second, parents):
                    out.append(
                        Diagnostic(
                            AUD005,
                            f"donor {donor!r} is recycled twice on one "
                            "execution path",
                            span=second.span,
                            context=name,
                        )
                    )


def _hint_missed_reuse(
    name: str,
    params: list[str],
    body: Expr,
    global_results,
    donors_by_function: dict[str, set[str]],
    out: list[Diagnostic],
) -> None:
    from repro.opt.reuse import select_reuse_sites

    results = global_results(name)
    if results is None:
        return
    used_donors = donors_by_function.get(name, set())
    for fact in results:
        if fact.param_spines < 1 or fact.non_escaping_spines < 1:
            continue
        if fact.param_index > len(params):
            continue
        param = params[fact.param_index - 1]
        if param in used_donors:
            continue
        sites = select_reuse_sites(body, param, donor_type=fact.param_type)
        if sites:
            out.append(
                Diagnostic(
                    AUD008,
                    f"G({name}, {fact.param_index}) = {fact.result} licenses "
                    f"reusing {param!r}'s top spine at {len(sites)} cons "
                    "site(s), but the program allocates fresh cells",
                    span=sites[0].span,
                    context=name,
                )
            )


def _audit_sharing_obligations(
    program: Program,
    analysis: EscapeResults,
    donors_by_function: dict[str, set[str]],
    param_index: dict[str, dict[str, int]],
    out: list[Diagnostic],
) -> None:
    """Theorem 2: every call that feeds a donor position must pass a list
    whose top spine is unshared — fresh (a literal chain), a cdr-suffix of
    the callee's own donor (inductively covered by the original caller's
    obligation), or the result of a function whose clause-2 sharing fact
    proves an unshared top spine."""
    from repro.opt.driver import _is_literal_chain

    sharing_cache: dict[str, int | None] = {}

    def unshared_result_spines(fn: str) -> int | None:
        if fn not in sharing_cache:
            try:
                sharing_cache[fn] = sharing_global(analysis, fn).unshared_top_spines
            except Exception:  # engine failure -> obligation stays open
                sharing_cache[fn] = None
        return sharing_cache[fn]

    scopes: list[tuple[str, Expr]] = [("<body>", program.body)]
    scopes.extend(
        (b.name, uncurry_lambda(b.expr)[1]) for b in program.bindings
    )

    def maximal_apps(body: Expr) -> "list[App]":
        """Outermost applications only — walking into an application's
        curried spine would double-count each call per argument."""
        found: list[App] = []
        stack = [body]
        while stack:
            node = stack.pop()
            if isinstance(node, App):
                head, args = uncurry_app(node)
                found.append(node)
                stack.extend(args)
                if not isinstance(head, (Var, Prim)):
                    stack.append(head)
            else:
                stack.extend(node.children())
        return found

    for caller, body in scopes:
        for node in maximal_apps(body):
            head, args = uncurry_app(node)
            if not (isinstance(head, Var) and head.name in donors_by_function):
                continue
            callee = head.name
            for donor in donors_by_function[callee]:
                index = param_index[callee].get(donor)
                if index is None or index > len(args):
                    continue
                actual = args[index - 1]
                if _is_literal_chain(actual):
                    continue  # fresh construction is unshared by definition
                if caller == callee and _cdr_chain_base(actual) == donor:
                    continue  # recursion walks the donor's own unshared spine
                arg_head, arg_args = uncurry_app(actual)
                if (
                    isinstance(arg_head, Var)
                    and arg_args
                    and arg_head.name in program.binding_names()
                ):
                    unshared = unshared_result_spines(arg_head.name)
                    if unshared is not None and unshared >= 1:
                        continue  # Theorem 2 clause 2 discharges it
                    reason = (
                        f"Theorem 2 gives {arg_head.name!r} only "
                        f"{unshared or 0} unshared result spine(s)"
                    )
                else:
                    reason = "its top-spine sharing is unknown here"
                out.append(
                    Diagnostic(
                        AUD006,
                        f"argument {index} of this {callee!r} call feeds the "
                        f"donor {donor!r}, but {reason}",
                        span=actual.span,
                        context=caller,
                    )
                )


def _audit_regions(
    program: Program, analysis: EscapeResults, out: list[Diagnostic]
) -> None:
    """Re-justify region annotations on the result call via the local
    escape test (§4.2), and hint at provably missed stack allocations."""
    from repro.opt.driver import _is_literal_chain

    body = program.body
    region = body.annotations.get("region")
    head, args = uncurry_app(body)

    if region is None and not args:
        return
    try:
        locals_ = analysis.local_test(body) if args and isinstance(head, Var) else []
    except Exception:  # engine failure -> region stays unjustified
        locals_ = None

    if region is not None:
        kind = region.get("kind", "block")
        if locals_ is None or not locals_:
            out.append(
                Diagnostic(
                    AUD007,
                    f"the result call opens a {kind} region but the local "
                    "escape test cannot be re-derived for it",
                    span=body.span,
                    context="<body>",
                )
            )
        elif not any(
            r.param_spines >= 1 and r.non_escaping_spines >= 1 for r in locals_
        ):
            results = ", ".join(f"L{r.param_index} = {r.result}" for r in locals_)
            out.append(
                Diagnostic(
                    AUD007,
                    f"every argument spine may escape the call ({results}); "
                    f"closing the {kind} region would free live cells",
                    span=body.span,
                    context="<body>",
                )
            )
        return

    # No region: hint when a literal argument provably could live on the
    # stack (§A.3.1 licensed but unused).
    if not locals_:
        return
    for fact, arg in zip(locals_, args):
        if (
            fact.param_spines >= 1
            and fact.non_escaping_spines >= 1
            and _is_literal_chain(arg)
            and not isinstance(arg, Var)
            and any(
                isinstance(n, App)
                and isinstance(uncurry_app(n)[0], Prim)
                and uncurry_app(n)[0].name == "cons"  # type: ignore[union-attr]
                for n in walk(arg)
            )
        ):
            out.append(
                Diagnostic(
                    AUD009,
                    f"L({fact.param_index}) = {fact.result}: the top "
                    f"{fact.non_escaping_spines} spine(s) of this literal die "
                    "with the call; its cells could live on the stack",
                    span=arg.span,
                    context="<body>",
                )
            )
