"""Abstract evaluator tests: expression cases, the letrec fixpoint,
traces, sampling/fingerprints, and the widening safety net."""

import pytest

from repro.escape.abstract import AbstractEvaluator, fingerprint, sample_domain
from repro.escape.domain import BOTTOM, ERR, EscapeValue
from repro.escape.lattice import BeChain, Escapement, NONE_ESCAPES
from repro.lang.ast import Letrec
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import prelude_program
from repro.types.infer import infer_expr, infer_program
from repro.types.types import INT, TFun, TList, list_of


def ev(d=2, **kwargs):
    return AbstractEvaluator(BeChain(d), **kwargs)


def typed(source: str, **env_types):
    from repro.types.types import TypeScheme

    expr = parse_expr(source)
    env = {name: TypeScheme.mono(ty) for name, ty in env_types.items()}
    infer_expr(expr, env)
    return expr


E11 = EscapeValue(Escapement(1, 1))


class TestExpressionCases:
    def test_literals_are_bottom(self):
        e = ev()
        for source in ["1", "true", "false", "nil"]:
            assert e.eval(typed(source), {}) == BOTTOM

    def test_variable_lookup(self):
        assert ev().eval(typed("x") if False else parse_expr("x"), {"x": E11}) == E11

    def test_unbound_variable_raises(self):
        with pytest.raises(AnalysisError):
            ev().eval(parse_expr("x"), {})

    def test_if_joins_branches(self):
        from repro.types.types import BOOL
        expr = typed("if b then x else nil", b=BOOL, x=TList(INT))
        env = {"b": BOTTOM, "x": E11}
        assert ev().eval(expr, env).be == Escapement(1, 1)

    def test_application(self):
        expr = typed("car x", x=TList(INT))
        env = {"x": E11}
        assert ev().eval(expr, env).be == Escapement(1, 0)

    def test_lambda_contains_free_vars(self):
        expr = typed("lambda y. x", x=TList(INT))
        value = ev().eval(expr, {"x": E11})
        assert value.be == Escapement(1, 1)  # the closure holds x

    def test_lambda_with_unbound_free_var_raises(self):
        expr = parse_expr("lambda y. zz")
        with pytest.raises(AnalysisError):
            ev().eval(expr, {})

    def test_closure_application_evaluates_body(self):
        expr = typed("(lambda y. cons y nil) x", x=INT)
        value = ev().eval(expr, {"x": E11})
        assert value.be == Escapement(1, 1)

    def test_steps_counted(self):
        e = ev()
        e.eval(typed("1 + 2"), {})
        assert e.steps > 0


class TestFixpoint:
    def _solve(self, names, d=None):
        program = prelude_program(names)
        infer_program(program)
        from repro.types.spines import program_spine_bound

        evaluator = ev(d or program_spine_bound(program))
        env = evaluator.solve_bindings(program.letrec, {})
        return evaluator, env

    def test_append_converges(self):
        evaluator, env = self._solve(["append"])
        trace = evaluator.traces[0]
        assert trace.converged and not trace.widened
        assert trace.iterations <= 3

    def test_append_value_matches_paper(self):
        # append = λx y. y ⊔ sub¹(x)
        evaluator, env = self._solve(["append"])
        append = env["append"]
        x = EscapeValue(Escapement(1, 1))
        y = BOTTOM
        assert append.apply(x).apply(y).be == Escapement(1, 0)
        assert append.apply(BOTTOM).apply(x).be == Escapement(1, 1)

    def test_letrec_expression_evaluation(self):
        from repro.types.types import TypeScheme
        expr = parse_expr("letrec f x = if null x then x else f (cdr x) in f y")
        infer_expr(expr, {"y": TypeScheme.mono(TList(INT))})
        value = ev(1).eval(expr, {"y": E11})
        assert value.be == Escapement(1, 1)

    def test_empty_letrec(self):
        expr = Letrec(bindings=(), body=parse_expr("1"))
        infer_expr(expr.body)
        assert ev().eval(expr, {}) == BOTTOM

    def test_untyped_binding_raises(self):
        expr = parse_expr("letrec f x = x in f")
        with pytest.raises(AnalysisError):
            ev().solve_bindings(expr, {})

    def test_mutual_recursion(self):
        program = parse_program(
            "even n = if n == 0 then true else odd (n - 1);"
            "odd n = if n == 0 then false else even (n - 1);"
        )
        infer_program(program)
        evaluator = ev(1)
        env = evaluator.solve_bindings(program.letrec, {})
        assert env["even"].apply(E11) == BOTTOM

    def test_widening_cap(self):
        # With max_iterations=1 nothing can converge; bindings are widened
        # to the worst case, which is still safe (maximal escapement).
        program = prelude_program(["append"])
        infer_program(program)
        evaluator = ev(1, max_iterations=1)
        env = evaluator.solve_bindings(program.letrec, {})
        assert evaluator.traces[0].widened
        x = EscapeValue(Escapement(1, 1))
        # Worst case: everything escapes.
        assert env["append"].apply(x).apply(BOTTOM).be == Escapement(1, 1)

    def test_traces_record_per_binding(self):
        evaluator, _ = self._solve(["ps"])
        names = {t.name for t in evaluator.traces}
        assert names == {"append", "split", "ps"}


class TestSamplingAndFingerprints:
    def test_first_order_sample_is_whole_chain(self):
        chain = BeChain(2)
        samples = sample_domain(TList(INT), chain)
        assert [s.be for s in samples] == chain.points()

    def test_function_sample_includes_worst(self):
        chain = BeChain(2)
        samples = sample_domain(TFun(INT, INT), chain)
        assert len(samples) >= 4
        assert any(not isinstance(s.fn, type(ERR)) for s in samples)

    def test_fingerprint_base_is_be(self):
        chain = BeChain(2)
        assert fingerprint(E11, TList(INT), chain) == Escapement(1, 1)

    def test_fingerprint_distinguishes_functions(self):
        chain = BeChain(1)
        ty = TFun(TList(INT), TList(INT))
        from repro.escape.domain import PrimFun

        ident = EscapeValue(NONE_ESCAPES, PrimFun(("id",), lambda x: x))
        const = EscapeValue(NONE_ESCAPES, PrimFun(("const",), lambda x: BOTTOM))
        assert fingerprint(ident, ty, chain) != fingerprint(const, ty, chain)

    def test_fingerprint_equal_for_equal_behaviour(self):
        chain = BeChain(1)
        ty = TFun(TList(INT), TList(INT))
        from repro.escape.domain import PrimFun

        a = EscapeValue(NONE_ESCAPES, PrimFun(("a",), lambda x: x))
        b = EscapeValue(NONE_ESCAPES, PrimFun(("b",), lambda x: x))
        assert fingerprint(a, ty, chain) == fingerprint(b, ty, chain)

    def test_values_equal_and_leq(self):
        evaluator = ev(1)
        ty = list_of(INT, 1)
        low = EscapeValue(Escapement(1, 0))
        high = EscapeValue(Escapement(1, 1))
        assert evaluator.value_leq(low, high, ty)
        assert not evaluator.value_leq(high, low, ty)
        assert evaluator.values_equal(low, low, ty)


class TestMemoization:
    def _solve(self, names, memoize):
        from repro.types.spines import program_spine_bound

        program = prelude_program(names)
        infer_program(program)
        evaluator = AbstractEvaluator(
            BeChain(program_spine_bound(program)), memoize=memoize
        )
        env = evaluator.solve_bindings(program.letrec, {})
        return program, evaluator, env

    def test_memoized_results_identical(self):
        from repro.escape.abstract import fingerprint

        base_program, base_ev, base_env = self._solve(["ps"], memoize=False)
        memo_program, memo_ev, memo_env = self._solve(["ps"], memoize=True)
        for name in base_program.binding_names():
            assert fingerprint(
                base_env[name], base_program.binding(name).expr.ty, base_ev.chain
            ) == fingerprint(
                memo_env[name], memo_program.binding(name).expr.ty, memo_ev.chain
            )

    def test_memoization_reduces_steps(self):
        _, base_ev, _ = self._solve(["ps"], memoize=False)
        _, memo_ev, _ = self._solve(["ps"], memoize=True)
        assert memo_ev.steps < base_ev.steps

    def test_memo_disabled_by_default(self):
        evaluator = ev()
        assert evaluator.memo is None


class TestIterates:
    def test_iterates_recorded_bottom_first(self):
        program = prelude_program(["append"])
        infer_program(program)
        evaluator = ev(1)
        evaluator.solve_bindings(program.letrec, {})
        assert evaluator.iterates[0]["append"] == BOTTOM
        assert len(evaluator.iterates) >= 2

    def test_fixpoint_derivation_matches_paper(self):
        from repro.escape.report import fixpoint_derivation

        lines = fixpoint_derivation(prelude_program(["append"]), "append", 1)
        assert lines[0].endswith("<0,0>")       # append^(0) = bottom
        assert lines[1].endswith("<1,0>")       # append^(1) = y ⊔ sub¹(x)
        assert lines[-1] == lines[-2].replace("^(1)", "^(1)") or lines[-1].endswith("<1,0>")
