"""Syntactic last-use analysis for the in-place-reuse transformation.

§6's condition for rewriting ``cons e1 e2`` to ``DCONS xᵢ e1 e2`` is that
"there is no further use of the i-th parameter xᵢ after the evaluation of
the subexpression ``(cons e1 e2)``".  This module decides that condition
syntactically, following the interpreter's strict evaluation order:

* ``e1 e2`` — ``e1``, then ``e2``, then the application happens;
* ``if c then t else e`` — ``c``, then exactly one branch;
* ``letrec`` — bindings in order, then the body.

Anything under a ``lambda`` evaluates at an unknown later time, so a target
under a lambda (relative to the root being asked about), or a variable
occurrence under a lambda after the target, is treated conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import App, Expr, If, Lambda, Letrec, Var, walk


@dataclass(frozen=True)
class _Scan:
    """State of the evaluation-order scan.

    ``found``  — the target expression has been evaluated already;
    ``used``   — a use of the variable may happen after the target.
    """

    found: bool
    used: bool


def uses_var(expr: Expr, name: str) -> bool:
    """Does ``name`` occur free in ``expr``?  (Shadowing-aware.)"""
    if isinstance(expr, Var):
        return expr.name == name
    if isinstance(expr, Lambda):
        if expr.param == name:
            return False
        return uses_var(expr.body, name)
    if isinstance(expr, Letrec):
        if name in expr.binding_names():
            return False
        return any(uses_var(child, name) for child in expr.children())
    return any(uses_var(child, name) for child in expr.children())


def var_used_after(root: Expr, target_uid: int, name: str) -> bool | None:
    """May ``name`` be evaluated after the node with uid ``target_uid``
    finishes evaluating, on some execution of ``root``?

    Returns ``None`` if the target does not occur in ``root`` at all, and
    ``True`` conservatively whenever the order cannot be established (for
    example the target sits under a lambda, or an inner lambda captures the
    variable — the resulting closure could run at any later time).
    """
    scan = _scan(root, target_uid, name, shadowed=frozenset())
    if not scan.found:
        return None
    if scan.used:
        return True
    for node in walk(root):
        if isinstance(node, Lambda) and node.param != name and uses_var(node.body, name):
            return True
    return False


def _scan(expr: Expr, target_uid: int, name: str, shadowed: frozenset[str]) -> _Scan:
    is_use = isinstance(expr, Var) and expr.name == name and name not in shadowed

    if expr.uid == target_uid:
        # The target itself finishes evaluating here; uses *inside* it are
        # before the mutation point, not after.
        return _Scan(found=True, used=False)

    if isinstance(expr, Lambda):
        inner_shadowed = shadowed | {expr.param}
        inner = _scan(expr.body, target_uid, name, inner_shadowed)
        if inner.found:
            # Target under a lambda: each application evaluates the body
            # again at an unknown time — give up conservatively.
            return _Scan(found=True, used=True)
        return _Scan(found=False, used=False)

    if isinstance(expr, If):
        cond = _scan(expr.cond, target_uid, name, shadowed)
        if cond.found:
            # After the condition, one branch runs; either may use the var.
            used = (
                cond.used
                or _may_use(expr.then, name, shadowed)
                or _may_use(expr.otherwise, name, shadowed)
            )
            return _Scan(found=True, used=used)
        then = _scan(expr.then, target_uid, name, shadowed)
        if then.found:
            return then
        other = _scan(expr.otherwise, target_uid, name, shadowed)
        if other.found:
            return other
        return _Scan(found=False, used=is_use)

    if isinstance(expr, Letrec):
        inner_shadowed = shadowed | set(expr.binding_names())
        ordered = list(expr.children())  # bindings in order, then body
        return _scan_sequence(ordered, target_uid, name, inner_shadowed)

    children = list(expr.children())
    if not children:
        return _Scan(found=False, used=is_use)
    return _scan_sequence(children, target_uid, name, shadowed)


def _scan_sequence(
    ordered: list[Expr], target_uid: int, name: str, shadowed: frozenset[str]
) -> _Scan:
    """Scan subexpressions evaluated strictly in the given order."""
    for index, child in enumerate(ordered):
        result = _scan(child, target_uid, name, shadowed)
        if result.found:
            used = result.used or any(
                _may_use(later, name, shadowed) for later in ordered[index + 1 :]
            )
            return _Scan(found=True, used=used)
    used_anywhere = any(_may_use(child, name, shadowed) for child in ordered)
    return _Scan(found=False, used=used_anywhere)


def _may_use(expr: Expr, name: str, shadowed: frozenset[str]) -> bool:
    if name in shadowed:
        return False
    return uses_var(expr, name)
