"""Interprocedural heap liveness over the flat IR.

Where the escape lattice answers *where may this cell flow*, heap liveness
answers *can this cell still be read* — per binding, per spine level.  The
analysis is a demand-driven backward pass in the spirit of Karkare et
al.'s access-path liveness (PAPERS.md: *Liveness of Heap Data* / *Heap
Reference Analysis for Functional Programs*), specialized to the paper's
car/cdr spine structure:

* The domain is the **live-depth lattice** ``0 ⊑ 1 ⊑ … ⊑ cap ⊑ ⊤``: a
  demand of ``k`` on a list value means reads may reach spine levels
  ``0..k-1`` and no deeper; ``0`` means the heap data is never read at
  all (the reference may still be compared against ``nil``); ``⊤`` means
  unbounded.  A depth ``k`` denotes exactly the Karkare access paths
  ``(d* a){<k} d*`` — every path with fewer than ``k`` ``car`` steps.
* Transfer functions run **backward** over :class:`repro.ir.nodes.Block`
  instructions (operands precede users, so one reverse sweep per block
  suffices): ``car`` converts a demand ``D`` on its result into
  ``max(1, D+1)`` on its argument, ``cdr`` into ``max(1, D)``, ``cons``
  splits ``D`` into ``D-1``/``D`` for head/tail, ``null`` and the integer
  primitives demand nothing, and anything the spine model cannot express
  (tuples, unknown call targets) degrades to ``⊤``.
* **Interprocedural** facts are per-function summaries — one live depth
  per parameter, computed under ``⊤`` result demand so they are sound at
  every call site — solved callees-first over the same Tarjan SCCs the
  escape engine schedules (:func:`repro.escape.scc.binding_sccs`), each
  SCC by a worklist iterated to fixpoint with widening to ``⊤`` on budget
  exhaustion.  :class:`~repro.query.AnalysisSession` memoizes the
  summaries per SCC through the :class:`~repro.store.AnalysisStore`
  (serialization codec 3).

The exported facts feed three consumers: the liveness-directed collector
(:mod:`repro.semantics.gc` marks with per-name budgets and reclaims
dead-but-reachable cells), the optimization auditor (interprocedural
justification for AUD004), and ``repro diff`` artifacts (a canonical
per-binding liveness section gating precision regressions).

Soundness of the name-keyed :meth:`HeapLivenessFacts.budget_map`: every
runtime read of heap data starts at a syntactic ``load`` of some binder
(letrec binding, parameter — including reads performed later by a closure
that captured the binder), and every ``load``'s demand is joined into the
binder's global depth, across *all* scopes sharing the name.  Values not
yet bound to a name (mid-evaluation temporaries) are GC temp roots and
marked unbounded.  Any analysis failure degrades to an empty map — all
names unbounded — which is exactly full-reachability marking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.escape.scc import binding_sccs
from repro.ir.lower import lower_expr
from repro.ir.nodes import Block, Instr
from repro.lang.ast import Binding, Lambda, Letrec, Program, walk

__all__ = [
    "TOP",
    "LivenessSummary",
    "HeapLivenessFacts",
    "LivenessResults",
    "LivenessBudgetExceeded",
    "analyze_program",
    "summarize_scc",
    "facts_from_summaries",
    "donor_live_after",
    "encode_summary",
    "decode_summary",
    "encode_depth",
    "decode_depth",
    "render_paths",
]

#: The unbounded live depth (every access path may be read).
TOP = None

#: Depth cap when the program gives us no better bound: depths beyond the
#: cap widen to ``⊤``, which keeps the lattice finite and the fixpoint
#: terminating without losing the distinctions the collector acts on.
DEFAULT_CAP = 8

#: Transfer-step budget for one whole-program analysis; exhaustion widens
#: to ``⊤`` (degraded, sound) instead of running away.
DEFAULT_MAX_STEPS = 500_000

#: Primitives that read or write nothing on the heap (integer/bool ops and
#: the ``null`` test, which is a constructor check, not a cell read).
_FLAT_PRIMS = frozenset(
    {"+", "-", "*", "/", "==", "<>", "<", "<=", ">", ">=", "null"}
)

_PRIM_ARITY = {
    "+": 2, "-": 2, "*": 2, "/": 2,
    "==": 2, "<>": 2, "<": 2, "<=": 2, ">": 2, ">=": 2,
    "cons": 2, "car": 1, "cdr": 1, "null": 1, "dcons": 3,
    "mkpair": 2, "fst": 1, "snd": 1,
}


class LivenessBudgetExceeded(Exception):
    """The analysis ran out of its step budget; callers degrade to ``⊤``."""


def _join(a: "int | None", b: "int | None") -> "int | None":
    if a is None or b is None:
        return None
    return max(a, b)


def _dec(d: "int | None") -> "int | None":
    if d is None:
        return None
    return max(0, d - 1)


def _inc(d: "int | None", cap: int) -> "int | None":
    if d is None or d + 1 > cap:
        return None
    return d + 1


def _leq(a: "int | None", b: "int | None") -> bool:
    """Lattice order: finite depths by ``<=``, ``⊤`` above everything."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


def encode_depth(d: "int | None") -> "int | str":
    return "top" if d is None else int(d)


def decode_depth(raw: "int | str") -> "int | None":
    if raw == "top":
        return None
    if isinstance(raw, bool) or not isinstance(raw, int) or raw < 0:
        raise ValueError(f"bad live depth {raw!r}")
    return raw


def render_paths(d: "int | None") -> str:
    """The Karkare-style access-path set a live depth denotes."""
    if d is None:
        return "(a+d)*"
    if d == 0:
        return "∅"
    if d == 1:
        return "d*"
    return f"d* (a d*){{<{d - 1}}} a? d*" if d == 2 else f"d* (a d*){{<{d}}}"


@dataclass(frozen=True)
class LivenessSummary:
    """One binding's liveness facts.

    ``params`` — live depth per parameter under unbounded result demand
    (``None`` when the binding is not a syntactic lambda chain, in which
    case call sites degrade to ``⊤``).  ``names`` — every environment
    name the binding's evaluation may demand, with its joined depth;
    this includes the binding's own locals (parameters, nested letrec
    names), which is what makes the global budget map name-complete.
    """

    params: "tuple[int | None, ...] | None"
    names: "tuple[tuple[str, int | None], ...]"

    def name_depth(self, name: str) -> "int | None":
        for key, depth in self.names:
            if key == name:
                return depth
        return 0


def encode_summary(summary: LivenessSummary) -> dict:
    return {
        "params": (
            None
            if summary.params is None
            else [encode_depth(p) for p in summary.params]
        ),
        "names": {name: encode_depth(d) for name, d in summary.names},
    }


def decode_summary(payload: dict) -> LivenessSummary:
    params = payload["params"]
    names = payload["names"]
    return LivenessSummary(
        params=(
            None if params is None else tuple(decode_depth(p) for p in params)
        ),
        names=tuple(
            (str(name), decode_depth(d)) for name, d in sorted(names.items())
        ),
    )


class _Budget:
    __slots__ = ("remaining",)

    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> None:
        self.remaining -= 1
        if self.remaining < 0:
            raise LivenessBudgetExceeded("liveness step budget exhausted")


def _block_loads(block: Block) -> frozenset[str]:
    """Every name loaded anywhere in ``block``, nested blocks included."""
    out: set[str] = set()
    stack = [block]
    while stack:
        b = stack.pop()
        for ins in b.instrs:
            if ins.op == "load":
                out.add(ins.name)
            stack.extend(ins.blocks)
    return frozenset(out)


def _peel_params(block: Block) -> "list[str] | None":
    """Parameter names of a lambda-chain binding (``f = λx.λy. …``)."""
    names: list[str] = []
    b = block
    while b.instrs and b.instrs[b.result].op == "close":
        ins = b.instrs[b.result]
        names.append(ins.param)
        b = ins.blocks[0]
    return names if names else None


class _Analyzer:
    """One backward demand pass over a binding's blocks.

    ``demands`` accumulates (by join) the live depth demanded of every
    environment name the pass encounters; closure bodies are analyzed
    once under ``⊤`` result demand (a closure may be applied anywhere,
    any later, with its result fully used), nested letrecs get their own
    worklist fixpoint.
    """

    def __init__(
        self,
        scope: "Mapping[str, LivenessSummary]",
        cap: int,
        budget: _Budget,
    ):
        self.scope = dict(scope)
        self.cap = cap
        self.budget = budget
        self.demands: dict[str, int | None] = {}
        self._closed: set[int] = set()

    def record(self, name: str, depth: "int | None") -> None:
        self.demands[name] = _join(self.demands.get(name, 0), depth)

    def run_block(self, block: Block, demand: "int | None") -> list:
        n = len(block.instrs)
        if n == 0:
            return []
        d: list[int | None] = [0] * n
        d[block.result] = demand
        for i in range(n - 1, -1, -1):
            self.budget.spend()
            ins = block.instrs[i]
            di = d[i]
            op = ins.op
            if op == "load":
                self.record(ins.name, di)
            elif op == "branch":
                _cond, then, otherwise = ins.operands
                d[then] = _join(d[then], di)
                d[otherwise] = _join(d[otherwise], di)
            elif op == "close":
                self._close_body(ins)
            elif op == "apply":
                if not self._is_inner_apply(block, i):
                    self._apply_chain(block, i, d)
            elif op == "enter":
                self._enter(ins, di)
            # const / prim produce no demands of their own
        return d

    # -- helpers -----------------------------------------------------------

    def _close_body(self, ins: Instr) -> None:
        """Analyze a closure body (once) under unbounded result demand."""
        key = id(ins)
        if key in self._closed:
            return
        self._closed.add(key)
        self.run_block(ins.blocks[0], TOP)

    def _is_inner_apply(self, block: Block, i: int) -> bool:
        """True when instruction ``i`` is the ``fn`` operand of another
        apply — the outermost apply of the chain handles the whole spine
        (the IR is tree-shaped, so each apply has at most one user)."""
        for user in block.users[i]:
            ins = block.instrs[user]
            if ins.op == "apply" and ins.operands[0] == i:
                return True
        return False

    def _apply_chain(self, block: Block, i: int, d: list) -> None:
        args: list[int] = []
        idx = i
        while block.instrs[idx].op == "apply":
            fn_idx, arg_idx = block.instrs[idx].operands
            args.append(arg_idx)
            idx = fn_idx
        args.reverse()
        head = block.instrs[idx]
        di = d[i]

        if head.op == "prim":
            self._prim_args(head.node.name, args, di, d)
            return
        if head.op == "close":
            # Immediate beta-redex: the k-th argument is demanded at the
            # k-th peeled parameter's accumulated depth.
            self._close_body(head)
            params: list[str] = []
            cur: Instr | None = head
            while cur is not None and cur.op == "close":
                params.append(cur.param)
                body = cur.blocks[0]
                res = body.instrs[body.result] if body.instrs else None
                cur = res if res is not None and res.op == "close" else None
            for k, arg in enumerate(args):
                if k < len(params):
                    d[arg] = _join(d[arg], self.demands.get(params[k], 0))
                else:
                    d[arg] = TOP
            return
        if head.op == "load":
            summary = self.scope.get(head.name)
            if (
                summary is not None
                and summary.params is not None
                and len(args) <= len(summary.params)
            ):
                for k, arg in enumerate(args):
                    d[arg] = _join(d[arg], summary.params[k])
                return
        # Unknown or over-applied head: everything may be read fully.
        d[idx] = TOP
        for arg in args:
            d[arg] = TOP

    def _prim_args(self, name: str, args: list, di, d: list) -> None:
        arity = _PRIM_ARITY.get(name)
        if arity is None or len(args) != arity:
            # Unknown prim or a partial application escaping as a value:
            # its captured arguments may be demanded fully wherever it is
            # eventually saturated.
            for arg in args:
                d[arg] = TOP
            return
        if name in _FLAT_PRIMS:
            return  # no heap reads (``null`` is an isinstance check)
        if name == "cons":
            d[args[0]] = _join(d[args[0]], _dec(di))
            d[args[1]] = _join(d[args[1]], di)
        elif name == "car":
            # Executes eagerly: the top cell is read even at demand 0, and
            # the element is one spine level below the result demand.
            d[args[0]] = _join(d[args[0]], _join(1, _inc(di, self.cap)))
        elif name == "cdr":
            d[args[0]] = _join(d[args[0]], _join(1, di))
        elif name == "dcons":
            # The donor's top cell is read (and recycled) at the reuse
            # site; the new head/tail behave like cons.
            d[args[0]] = _join(d[args[0]], 1)
            d[args[1]] = _join(d[args[1]], _dec(di))
            d[args[2]] = _join(d[args[2]], di)
        else:
            # mkpair / fst / snd: tuples have no spine structure, so the
            # depth domain cannot track their contents — degrade.
            for arg in args:
                d[arg] = TOP

    def _enter(self, ins: Instr, di) -> None:
        nested = dict(zip(ins.names, ins.blocks[:-1]))
        summaries = _fix_letrec(nested, self.scope, self.cap, self.budget)
        for summary in summaries.values():
            for name, depth in summary.names:
                self.record(name, depth)
        saved = self.scope
        self.scope = {**saved, **summaries}
        try:
            self.run_block(ins.blocks[-1], di)
        finally:
            self.scope = saved


def _binding_summary(
    block: Block,
    scope: "Mapping[str, LivenessSummary]",
    cap: int,
    budget: _Budget,
) -> LivenessSummary:
    analyzer = _Analyzer(scope, cap, budget)
    analyzer.run_block(block, TOP)
    peeled = _peel_params(block)
    params = (
        None
        if peeled is None
        else tuple(analyzer.demands.get(p, 0) for p in peeled)
    )
    return LivenessSummary(
        params=params,
        names=tuple(sorted(analyzer.demands.items(), key=lambda kv: kv[0])),
    )


def _top_summary(block: Block) -> LivenessSummary:
    """The sound worst case for one binding: every parameter and every
    name it could ever load demanded at ``⊤``."""
    peeled = _peel_params(block)
    return LivenessSummary(
        params=None if peeled is None else tuple(TOP for _ in peeled),
        names=tuple((name, TOP) for name in sorted(_block_loads(block))),
    )


def _fix_letrec(
    blocks: "Mapping[str, Block]",
    scope: "Mapping[str, LivenessSummary]",
    cap: int,
    budget: _Budget,
) -> dict[str, LivenessSummary]:
    """Worklist fixpoint over one letrec's (or one SCC's) bindings.

    Summaries start at ⊥ and only grow (every transfer is monotone and
    the capped depth lattice is finite), so the deque converges; the step
    budget is the backstop, widening everything to ``⊤`` on exhaustion.
    """
    names = sorted(blocks)
    summaries: dict[str, LivenessSummary] = {
        name: LivenessSummary(
            params=(
                None
                if (peeled := _peel_params(blocks[name])) is None
                else tuple(0 for _ in peeled)
            ),
            names=(),
        )
        for name in names
    }
    loads = {name: _block_loads(blocks[name]) for name in names}
    dependents = {
        name: tuple(m for m in names if name in loads[m]) for name in names
    }
    work = deque(names)
    queued = set(names)
    try:
        while work:
            name = work.popleft()
            queued.discard(name)
            merged = {**dict(scope), **summaries}
            updated = _binding_summary(blocks[name], merged, cap, budget)
            if updated != summaries[name]:
                summaries[name] = updated
                for dependent in dependents[name]:
                    if dependent not in queued:
                        work.append(dependent)
                        queued.add(dependent)
    except LivenessBudgetExceeded:
        return {name: _top_summary(blocks[name]) for name in names}
    return summaries


# -- program-level entry points ---------------------------------------------


def summarize_scc(
    bindings: "Iterable[Binding]",
    dependencies: "Mapping[str, LivenessSummary]",
    cap: int = DEFAULT_CAP,
    budget: "_Budget | None" = None,
) -> dict[str, LivenessSummary]:
    """Summarize one SCC's bindings given its dependencies' summaries.

    This is the unit :class:`~repro.query.AnalysisSession` memoizes per
    SCC digest; two programs whose typed bindings and analysis inputs
    agree share the stored summaries like they share lattice values.
    """
    blocks = {
        b.name: lower_expr(b.expr, label=f"live.{b.name}") for b in bindings
    }
    return _fix_letrec(
        blocks, dependencies, cap, budget or _Budget(DEFAULT_MAX_STEPS)
    )


def _binder_names(program: Program) -> frozenset[str]:
    names: set[str] = set(program.binding_names())
    for node in walk(program.letrec):
        if isinstance(node, Lambda):
            names.add(node.param)
        elif isinstance(node, Letrec):
            names.update(node.binding_names())
    return frozenset(names)


@runtime_checkable
class LivenessResults(Protocol):
    """The ``EscapeResults``-style read side of the liveness facts."""

    engine: str
    degraded: bool

    def binding_fact(self, name: str) -> "LivenessSummary | None": ...

    def use_depth(self, name: str) -> "int | None": ...

    def budget_map(self) -> "dict[str, int | None]": ...

    def access_paths(self, name: str) -> str: ...


class HeapLivenessFacts:
    """Whole-program heap-liveness facts (implements
    :class:`LivenessResults`).

    ``use_depth(name)`` is the joined live depth of binder ``name``
    across every scope that reads it; ``budget_map()`` is the collector's
    view — one entry per binder, ``None`` meaning unbounded.  A degraded
    instance (analysis failure or budget exhaustion) answers ``⊤`` for
    everything and exports an empty budget map, which the collector
    treats as full-reachability marking.
    """

    engine = "heap-liveness"

    def __init__(
        self,
        cap: int,
        summaries: "Mapping[str, LivenessSummary]",
        body: "Mapping[str, int | None]",
        binders: frozenset[str],
        degraded: bool = False,
    ):
        self.cap = cap
        self.summaries = dict(summaries)
        self.body = dict(body)
        self.binders = binders
        self.degraded = degraded
        merged: dict[str, int | None] = dict(body)
        for summary in self.summaries.values():
            for name, depth in summary.names:
                merged[name] = _join(merged.get(name, 0), depth)
        self._merged = merged

    def binding_fact(self, name: str) -> "LivenessSummary | None":
        return self.summaries.get(name)

    def use_depth(self, name: str) -> "int | None":
        if self.degraded:
            return TOP
        if name in self._merged:
            return self._merged[name]
        # A binder no scope ever loads is dead-after-bind; anything else
        # (a name we never saw) is unbounded.
        return 0 if name in self.binders else TOP

    def budget_map(self) -> "dict[str, int | None]":
        if self.degraded:
            return {}
        return {name: self.use_depth(name) for name in sorted(self.binders)}

    def access_paths(self, name: str) -> str:
        return render_paths(self.use_depth(name))

    def to_json(self) -> dict:
        """Canonical (sorted, hash-seed-independent) artifact section."""
        return {
            "cap": self.cap,
            "degraded": self.degraded,
            "bindings": {
                name: encode_summary(summary)
                for name, summary in sorted(self.summaries.items())
            },
            "use": {
                name: encode_depth(depth)
                for name, depth in sorted(self.budget_map().items())
            },
        }


def degraded_facts(program: Program, cap: int = DEFAULT_CAP) -> HeapLivenessFacts:
    try:
        binders = _binder_names(program)
    except Exception:
        binders = frozenset()
    return HeapLivenessFacts(
        cap=cap, summaries={}, body={}, binders=binders, degraded=True
    )


def facts_from_summaries(
    program: Program,
    summaries: "Mapping[str, LivenessSummary]",
    cap: int,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> HeapLivenessFacts:
    """Assemble program facts from per-binding summaries (session path).

    Missing summaries mean a binding's reads are unaccounted for, so the
    only sound answer is the degraded one.
    """
    names = set(program.binding_names())
    if not names <= set(summaries):
        return degraded_facts(program, cap)
    try:
        budget = _Budget(max_steps)
        analyzer = _Analyzer(summaries, cap, budget)
        analyzer.run_block(lower_expr(program.body, label="live.$body"), TOP)
        return HeapLivenessFacts(
            cap=cap,
            summaries=summaries,
            body=dict(analyzer.demands),
            binders=_binder_names(program),
        )
    except Exception:
        return degraded_facts(program, cap)


def analyze_program(
    program: Program,
    cap: "int | None" = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> HeapLivenessFacts:
    """Standalone whole-program analysis (no session, no store).

    Never raises: any failure — unloadable construct, budget exhaustion —
    returns degraded facts whose budget map is empty (all ``⊤``).
    """
    if cap is None:
        cap = DEFAULT_CAP
    try:
        budget = _Budget(max_steps)
        scope: dict[str, LivenessSummary] = {}
        for scc in binding_sccs(program.letrec):
            scope.update(
                summarize_scc(scc.bindings, dict(scope), cap, budget)
            )
        return facts_from_summaries(program, scope, cap, max_steps)
    except Exception:
        return degraded_facts(program, cap)


def donor_live_after(
    program: Program,
    function: str,
    site_uid: int,
    donor: str,
    facts: "HeapLivenessFacts | None" = None,
) -> "bool | None":
    """Interprocedural sharpening of ``var_used_after`` for AUD004.

    ``False`` — the donor's heap data is provably dead past the reuse
    site on every path: every later syntactic use demands depth 0 (e.g. a
    ``null`` test, or passing the donor to a function whose summary never
    reads that parameter's cells).  ``True`` — some later use may read a
    cell.  ``None`` — the site is out of this helper's reach (nested
    lambda, degraded facts); callers keep the conservative answer.
    """
    if facts is None or facts.degraded:
        return None
    try:
        binding = program.binding(function)
    except KeyError:
        return None
    try:
        block = lower_expr(binding.expr, label=f"live.audit.{function}")
    except Exception:
        return None
    # Peel the lambda chain down to the function body block.
    body = block
    while body.instrs and body.instrs[body.result].op == "close":
        body = body.instrs[body.result].blocks[0]
    site_idx = next(
        (i for i, ins in enumerate(body.instrs) if ins.node.uid == site_uid),
        None,
    )
    if site_idx is None:
        return None
    # A closure or nested letrec loading the donor may run at any time
    # after the reuse — conservatively live (parity with the lambda rule
    # of the intra-procedural pass).
    for ins in body.instrs:
        for nested in ins.blocks:
            if donor in _block_loads(nested):
                return True
    try:
        analyzer = _Analyzer(facts.summaries, facts.cap, _Budget(DEFAULT_MAX_STEPS))
        demands = analyzer.run_block(body, TOP)
    except Exception:
        return None
    # Flat blocks evaluate in index order, so instructions after the site
    # are the continuation (branch arms of the *other* path land here too,
    # which only errs toward liveness).
    for i in range(site_idx + 1, len(body.instrs)):
        ins = body.instrs[i]
        if ins.op == "load" and ins.name == donor:
            depth = demands[i]
            if depth is None or depth >= 1:
                return True
    return False
