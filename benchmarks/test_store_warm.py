"""ST1 — the analysis store: warm batch runs re-solve nothing.

§7's practicality concern is fixpoint cost; the store amortizes it across
*processes*, not just queries.  A corpus of programs sharing the prelude's
``append`` knot is batch-analyzed twice through one content-addressed
store: the cold run pays every fixpoint once (and already shares ``append``
across files via its provenance digest), the warm run decodes every
component — zero fixpoint iterations, zero SCC misses, bit-identical
lattice values.

The acceptance gate asserted here (and exported to ``BENCH_store.json``):
the warm run performs **0** fixpoint iterations on shared components and
serves every SCC from the store.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.batch import run_batch
from repro.bench.tables import print_table
from repro.lang.prelude import prelude_source

#: Corpus members sharing the ``append`` SCC (pinned d makes the digests
#: line up across files — d is part of the provenance key).
CORPUS = {
    "partition_sort.nml": prelude_source(["ps"], "ps [5, 2, 7, 1, 3, 4]"),
    "reverse.nml": prelude_source(["append", "rev"], "rev [1, 2, 3, 4]"),
    "concat.nml": prelude_source(["append", "concat"], "concat [[1], [2, 3]]"),
}

PINNED_D = 2


def _write_corpus(root: Path) -> Path:
    corpus = root / "corpus"
    corpus.mkdir()
    for name, source in CORPUS.items():
        (corpus / name).write_text(source)
    return corpus


def test_st1_warm_store_batch_does_no_fixpoint_work(benchmark, tmp_path):
    corpus = _write_corpus(tmp_path)
    store = tmp_path / "store"

    cold = run_batch([corpus], store_root=store, jobs=1, d=PINNED_D)
    assert cold.ok
    cold_totals = cold.totals()
    assert cold_totals["iterations"] > 0
    assert cold_totals["store_writes"] > 0
    # cross-program sharing already in the cold run: after the first file
    # solves append, every other file decodes it.
    assert cold_totals["store_hits"] >= len(CORPUS) - 1

    warm = run_batch([corpus], store_root=store, jobs=1, d=PINNED_D)
    assert warm.ok
    warm_totals = warm.totals()

    # The acceptance gate: a warm batch re-solves nothing.
    assert warm_totals["iterations"] == 0
    assert warm_totals["scc_misses"] == 0
    assert warm_totals["store_misses"] == 0
    assert warm_totals["store_hits"] == (
        cold_totals["scc_hits"] + cold_totals["scc_misses"]
    )

    # Identical per-file shapes out of both runs.
    for before, after in zip(cold.reports, warm.reports, strict=True):
        assert (before.path, before.ok, before.d, before.functions) == (
            after.path,
            after.ok,
            after.d,
            after.functions,
        )

    print_table(
        ["run", "fixpoint iterations", "eval steps", "scc misses", "store hits"],
        [
            [
                "cold (empty store)",
                cold_totals["iterations"],
                cold_totals["eval_steps"],
                cold_totals["scc_misses"],
                cold_totals["store_hits"],
            ],
            [
                "warm (shared store)",
                warm_totals["iterations"],
                warm_totals["eval_steps"],
                warm_totals["scc_misses"],
                warm_totals["store_hits"],
            ],
        ],
        title="ST1: batch analysis, cold vs warm store",
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_store.json"
    out.write_text(
        json.dumps(
            {
                "corpus": sorted(CORPUS),
                "d": PINNED_D,
                "cold": cold_totals,
                "warm": warm_totals,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    benchmark(run_batch, [corpus], store_root=store, jobs=1, d=PINNED_D)


def test_st1_parallel_workers_share_one_store(tmp_path):
    """Two-process batch over a warm store: every worker decodes, none
    solves — the ``repro batch --jobs`` path end to end."""
    corpus = _write_corpus(tmp_path)
    store = tmp_path / "store"
    run_batch([corpus], store_root=store, jobs=1, d=PINNED_D)

    warm = run_batch([corpus], store_root=store, jobs=2, d=PINNED_D)
    assert warm.ok and warm.jobs == 2
    totals = warm.totals()
    assert totals["iterations"] == 0
    assert totals["scc_misses"] == 0
