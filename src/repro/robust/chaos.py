"""Seeded chaos schedules and the always-answer soak harness.

The point of the resilience layer is a single invariant: **every question
put to the system gets a sound answer — exact when possible, the ``W^τ``
worst case when not, a flagged quarantine record at worst — and the system
itself outlives the failure.**  This module turns that sentence into a
measured artifact:

* :func:`seeded_batch_plan` / :func:`seeded_serve_plan` derive a
  :class:`~repro.robust.faults.FaultPlan` per round from one RNG seed —
  worker crashes, hung workers, torn store writes, failed store loads,
  stalled and faulted request stages — so a soak run is exactly
  replayable;
* :func:`soak_batch` drives the supervised batch driver through several
  rounds of those plans over one shared store;
* :func:`soak_serve` drives a live ``repro serve`` daemon (real HTTP over
  a loopback socket) through a request schedule under injected service
  faults;
* :class:`SoakReport` accumulates both and checks the invariant:
  100% of files and requests answered (degraded allowed), zero orphaned
  ``*.tmp`` files after the post-run reap, zero hung worker processes,
  and — the soundness cross-check — the :mod:`repro.check` auditor finds
  nothing wrong with any *non-degraded* optimize response.

The benchmark (``benchmarks/test_soak.py``) runs a full schedule and
exports ``BENCH_soak.json``; CI runs a short schedule as ``soak-smoke``.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.robust.faults import FaultPlan, SlowStage, StageFault

__all__ = [
    "seeded_batch_plan",
    "seeded_serve_plan",
    "soak_batch",
    "soak_serve",
    "finish_store_hygiene",
    "SoakReport",
]


# -- seeded schedules --------------------------------------------------------


def seeded_batch_plan(rng: random.Random, timeout_s: float) -> FaultPlan:
    """One batch round's faults, drawn deterministically from ``rng``:
    maybe a worker crash, maybe a hung worker (sleeping well past the
    supervisor's timeout), maybe torn store writes, maybe failed store
    loads."""
    slow: tuple[SlowStage, ...] = ()
    if rng.random() < 0.5:
        slow = (
            SlowStage(
                "worker", at=rng.randint(1, 3), seconds=max(2.0, timeout_s * 6)
            ),
        )
    stage_faults: tuple[StageFault, ...] = ()
    if rng.random() < 0.5:
        stage_faults = (StageFault("store_load", at=rng.randint(1, 4)),)
    return FaultPlan(
        worker_crash_at=rng.choice([None, 1, 2, 3]),
        slow_stages=slow,
        stage_faults=stage_faults,
        torn_write_at=rng.choice([None, 1, 2]),
        torn_write_every=rng.choice([None, None, 3]),
    )


def seeded_serve_plan(rng: random.Random, requests: int) -> FaultPlan:
    """One serve round's faults: a few request executions raise (the
    breaker's food), a few stall briefly, and store writes tear under the
    same fault kinds as the batch."""
    ordinals = rng.sample(range(1, requests + 1), k=min(2, requests))
    stage_faults = tuple(StageFault("serve", at=at) for at in sorted(ordinals))
    slow = (
        (SlowStage("serve", at=rng.randint(1, requests), seconds=0.02),)
        if rng.random() < 0.5
        else ()
    )
    return FaultPlan(
        stage_faults=stage_faults,
        slow_stages=slow,
        torn_write_at=rng.choice([None, 1]),
    )


# -- the report --------------------------------------------------------------


@dataclass
class SoakReport:
    """What a soak run observed, and whether the invariant held."""

    seed: int = 0
    rounds: int = 0
    # batch side
    files_total: int = 0
    files_answered: int = 0
    files_exact: int = 0
    files_degraded: int = 0
    files_quarantined: int = 0
    files_failed_hard: int = 0
    retries_quarantine_attempts: int = 0
    # serve side
    requests_total: int = 0
    requests_answered: int = 0
    requests_degraded: int = 0
    requests_coalesced: int = 0
    responses_4xx: int = 0
    responses_5xx: int = 0
    # soundness cross-check (repro.check auditor over optimize responses)
    optimize_audited: int = 0
    optimize_audit_findings: int = 0
    # hygiene
    orphan_tmp_before_reap: int = 0
    orphan_tmp_after_reap: int = 0
    hung_processes: int = 0
    faults_scheduled: list = field(default_factory=list)

    @property
    def always_answered(self) -> bool:
        """The invariant: every file and every request produced an answer
        (exact, degraded, flagged quarantine, or a structured error body —
        never silence, never a hang), nothing leaked, nothing unsound
        slipped past the auditor."""
        return (
            self.files_answered == self.files_total
            and self.requests_answered == self.requests_total
            and self.optimize_audit_findings == 0
            and self.orphan_tmp_after_reap == 0
            and self.hung_processes == 0
        )

    def to_json(self) -> dict:
        doc = {k: v for k, v in self.__dict__.items()}
        doc["always_answered"] = self.always_answered
        return doc


def _describe_plan(plan: FaultPlan) -> dict:
    return {
        "worker_crash_at": plan.worker_crash_at,
        "slow_stages": [
            {"stage": s.stage, "at": s.at, "seconds": s.seconds, "every": s.every}
            for s in plan.slow_stages
        ],
        "stage_faults": [
            {"stage": f.stage, "at": f.at} for f in plan.stage_faults
        ],
        "torn_write_at": plan.torn_write_at,
        "torn_write_every": plan.torn_write_every,
    }


# -- batch soak --------------------------------------------------------------


def soak_batch(
    corpus: "list[str | Path]",
    store_root: "str | Path",
    report: SoakReport,
    rounds: int = 4,
    seed: int = 0,
    jobs: int = 2,
    timeout_s: float = 0.75,
    deadline_ms: "float | None" = 500.0,
) -> list:
    """Run ``rounds`` supervised batch passes over ``corpus`` through one
    shared store, each under a fresh seeded fault plan; fold the outcomes
    into ``report`` and return the per-round :class:`~repro.batch
    .BatchReport`\\ s."""
    from repro.batch import run_batch
    from repro.robust.resilience import RetryPolicy

    rng = random.Random(seed)
    retry = RetryPolicy(max_attempts=3, base_delay_s=0.02, max_delay_s=0.2, seed=seed)
    batch_reports = []
    for round_index in range(rounds):
        plan = seeded_batch_plan(rng, timeout_s)
        report.faults_scheduled.append({"batch_round": round_index, **_describe_plan(plan)})
        batch = run_batch(
            corpus,
            store_root=store_root,
            jobs=jobs,
            deadline_ms=deadline_ms,
            timeout_s=timeout_s,
            retry=retry,
            fault_plan=plan,
        )
        batch_reports.append(batch)
        report.rounds += 1
        report.files_total += len(batch.reports)
        for file_report in batch.reports:
            if file_report.ok or file_report.quarantined:
                report.files_answered += 1
            if file_report.quarantined:
                report.files_quarantined += 1
                report.retries_quarantine_attempts += file_report.attempts
            elif file_report.ok and file_report.degraded:
                report.files_degraded += 1
            elif file_report.ok:
                report.files_exact += 1
            else:
                report.files_failed_hard += 1
    report.hung_processes += len(multiprocessing.active_children())
    return batch_reports


# -- serve soak --------------------------------------------------------------


def _http_json(url: str, payload: "dict | None" = None, timeout: float = 30.0):
    """POST (or GET when ``payload`` is None) and decode; HTTP errors with
    JSON bodies are *answers*, so they decode too."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8", errors="replace")
        try:
            return error.code, json.loads(body)
        except ValueError:
            return error.code, None


def soak_serve(
    sources: list[str],
    report: SoakReport,
    rounds: int = 3,
    seed: int = 0,
    store_root: "str | None" = None,
) -> None:
    """Stand up a real daemon on a loopback socket and push a seeded
    request schedule through it under injected service faults; every
    response (including structured 4xx/5xx bodies) counts as answered,
    and every *non-degraded* optimize response is cross-checked by the
    static auditor — the soundness half of the invariant."""
    from repro.check import check_program
    from repro.lang.parser import parse_program
    from repro.robust import faults
    from repro.serve import AnalysisService, make_server

    rng = random.Random(seed + 1)
    service = AnalysisService(store_root=store_root, default_deadline_ms=2000.0)
    server = make_server("127.0.0.1", 0, service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"
    try:
        for round_index in range(rounds):
            schedule = []
            for source in sources:
                schedule.append(("analyze", {"source": source}))
                schedule.append(("check", {"source": source}))
                schedule.append(("optimize", {"source": source}))
                # a starved request: must come back degraded, not broken
                schedule.append(
                    ("analyze", {"source": source, "deadline_ms": 0.0001})
                )
            rng.shuffle(schedule)
            plan = seeded_serve_plan(rng, len(schedule))
            report.faults_scheduled.append(
                {"serve_round": round_index, **_describe_plan(plan)}
            )
            with faults.inject(plan):
                for endpoint, payload in schedule:
                    report.requests_total += 1
                    status, doc = _http_json(f"{base}/{endpoint}", payload)
                    if doc is None:
                        continue  # unanswered: a non-JSON body breaks the invariant
                    report.requests_answered += 1
                    if doc.get("degraded"):
                        report.requests_degraded += 1
                    if doc.get("coalesced"):
                        report.requests_coalesced += 1
                    if 400 <= status < 500:
                        report.responses_4xx += 1
                    elif status >= 500:
                        report.responses_5xx += 1
                    if endpoint == "optimize" and status == 200 and "program" in doc:
                        # Strictly stronger than the acceptance bar (which
                        # only demands auditing *non-degraded* responses):
                        # every returned program — even one where some
                        # optimization step was skipped — must audit clean.
                        audited = check_program(
                            parse_program(doc["program"]), passes=["audit"]
                        )
                        report.optimize_audited += 1
                        report.optimize_audit_findings += audited.counts()["error"]
        status, _ = _http_json(f"{base}/healthz")
        assert status == 200
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5.0)


def finish_store_hygiene(report: SoakReport, store_root: "str | Path") -> None:
    """The post-run sweep for one store root: count torn-write residue,
    then prove the reap leaves the directory clean.  Accumulates, so call
    it once per store the soak touched."""
    from repro.store import AnalysisStore

    store = AnalysisStore(store_root, reap=False)
    report.orphan_tmp_before_reap += len(store.tmp_files())
    store.reap_tmp(max_age_s=0.0)
    report.orphan_tmp_after_reap += len(store.tmp_files())
