"""Canonical JSON: one serializer for every machine-readable emission.

Any dict built from set- or hash-ordered iteration serializes in a
``PYTHONHASHSEED``-dependent key order under a bare ``json.dumps``.  That
is invisible to a human reader and fatal to artifact diffing: two byte
levels of the same analysis would differ for no semantic reason.  The
on-disk store already serializes canonically (``sort_keys=True``, fixed
separators — :meth:`repro.store.AnalysisStore.write`); this module makes
that policy reusable so the CLI's ``--json`` outputs, trace exports, and
the ``repro diff`` artifacts are all byte-stable across processes and
hash seeds.
"""

from __future__ import annotations

import json
from typing import Any, Callable


def canonical_json(document: Any, indent: int | None = 2,
                   default: "Callable | None" = None) -> str:
    """``document`` as deterministic JSON text (no trailing newline).

    Keys are sorted and separators fixed, so equal documents produce equal
    bytes regardless of insertion order or ``PYTHONHASHSEED``.  ``indent``
    keeps the CLI outputs human-skimmable; pass ``None`` for compact.
    """
    if indent is None:
        return json.dumps(
            document, sort_keys=True, separators=(",", ":"), default=default
        )
    return json.dumps(document, sort_keys=True, indent=indent, default=default)


def canonical_dumps(document: Any, default: "Callable | None" = None) -> str:
    """Compact canonical form — one JSONL line or a digest preimage."""
    return canonical_json(document, indent=None, default=default)


def canonical_bytes(document: Any) -> bytes:
    """UTF-8 canonical encoding with a trailing newline — what artifact
    files contain, so ``cmp``/``diff -r`` over artifact trees is exact."""
    return (canonical_json(document) + "\n").encode("utf-8")
