"""Snapshot: one canonical JSON artifact per corpus file.

An artifact is everything a later revision could regress, in comparable
form:

* per-binding **lattice fingerprints** (the extensional image the
  legacy/worklist differential suite already compares) and structured
  lattice **values** ``{escapes, spines}`` so the differ can apply the
  ``B_e`` order rather than string equality;
* **sharing classes** from the worklist engine's union-find partition;
* per-binding **heap-liveness facts** (:mod:`repro.analysis.heap_liveness`):
  the interprocedural summaries and the joined per-binder use depths the
  liveness-directed collector budgets on — a depth that goes *up* (or a
  fact set that degrades to ``⊤``) is a weakening the differ gates on;
* **optimization decisions** with justification, obligation, and span —
  but only *audit-certified* ones: a decision whose specialization the
  independent auditor (:mod:`repro.check.audit`) condemns is recorded
  under ``decertified`` instead, so an unsound compiler shows up as a
  *lost* decision, exactly the regression class the differ gates on;
* **checker findings** by rule ID with spans and contexts;
* the **machine-code** listing digest and per-opcode instruction counts
  of the optimized program;
* **provenance**: engine, store digest version, artifact schema version,
  and the chain bound ``d``.

Byte stability is load-bearing: every list is explicitly sorted, every
emission goes through :mod:`repro.canonical`, and nothing
seed-, time-, or warmth-dependent (session stats, timings) is recorded —
snapshotting the same tree twice under different ``PYTHONHASHSEED``s, or
against a cold vs. warm store, must produce identical bytes.

``snapshot_corpus`` fans the work across the supervised ``repro.batch``
workers (crash containment, per-file timeouts, store read-through), so a
warm corpus snapshot is cheap and a poison file cannot sink the run.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.canonical import canonical_bytes, canonical_dumps
from repro.lang.errors import NO_SPAN

#: Bumped whenever the artifact layout changes incompatibly; compare
#: refuses to pair artifacts across schema versions.
#: 2: artifacts carry a canonical per-binding heap-liveness section.
ARTIFACT_SCHEMA = 2

#: The snapshot tree's index file (not a per-file artifact).
INDEX_NAME = "_snapshot.json"

#: Per-file artifacts are ``<corpus-relative path> + ARTIFACT_SUFFIX``.
ARTIFACT_SUFFIX = ".json"


def _span_text(span) -> "str | None":
    return None if span == NO_SPAN else str(span)


def _scheme_text(scheme) -> str:
    """Render a type scheme with inference variables renumbered by first
    occurrence in the body — ``str(scheme)`` would leak the process-global
    fresh-variable counter into artifacts (same program, different bytes
    per run), the exact instability :func:`repro.types.types
    .type_fingerprint` exists to kill for cache keys."""
    from repro.types.types import TFun, TList, TProd, TVar, TypeScheme, apply_subst

    names: dict[TVar, TVar] = {}

    def collect(t) -> None:
        if isinstance(t, TVar):
            if t not in names:
                names[t] = TVar(len(names) + 1)
        elif isinstance(t, TList):
            collect(t.element)
        elif isinstance(t, TFun):
            collect(t.arg)
            collect(t.result)
        elif isinstance(t, TProd):
            collect(t.fst)
            collect(t.snd)

    collect(scheme.body)
    for var in scheme.vars:
        if var not in names:
            names[var] = TVar(len(names) + 1)
    quantified = tuple(
        sorted((names[v] for v in scheme.vars), key=lambda v: v.id)
    )
    return str(TypeScheme(quantified, apply_subst(scheme.body, dict(names))))


def snapshot_program(program, rel: str, store=None, engine: "str | None" = None,
                     d: "int | None" = None,
                     max_iterations: "int | None" = None) -> dict:
    """The artifact document for one parsed program.

    Never raises for analysis-stage failures on a well-formed program:
    per-binding analysis errors are recorded in the binding's own entry.
    (Parse/type failures are the caller's to turn into an error artifact —
    see :func:`error_artifact`.)
    """
    from repro.check import check_program
    from repro.escape.abstract import fingerprint
    from repro.escape.analyzer import EscapeAnalysis
    from repro.lang.errors import AnalysisError, NmlError
    from repro.machine.compiler import compile_program
    from repro.machine.instructions import disassemble, instruction_counts
    from repro.opt.driver import apply_plan, plan_optimizations
    from repro.query import DIGEST_VERSION
    from repro.types.types import arity

    analysis = EscapeAnalysis(
        program, d=d, max_iterations=max_iterations, store=store, engine=engine
    )
    solved = analysis.solve(None)
    chain = solved.evaluator.chain

    bindings: dict[str, dict] = {}
    for name in program.binding_names():
        entry: dict = {}
        try:
            scheme = analysis.scheme(name)
            ty = analysis.binding_type(name, solved)
            entry["scheme"] = _scheme_text(scheme)
            entry["fingerprint"] = str(fingerprint(solved.env[name], ty, chain))
            entry["is_function"] = bool(arity(scheme.body))
            if entry["is_function"]:
                params = []
                for result in analysis.global_all(name):
                    params.append(
                        {
                            "index": result.param_index,
                            "param_spines": result.param_spines,
                            "value": str(result.result),
                            "escapes": result.result.escapes,
                            "escape_depth": result.result.spines,
                            "escaping_spines": result.escaping_spines,
                            "non_escaping_spines": result.non_escaping_spines,
                        }
                    )
                entry["params"] = params
        except (AnalysisError, NmlError) as error:
            entry["error"] = str(error)
        bindings[name] = entry

    sharing = {
        name: sorted(members)
        for name, members in analysis.sharing_classes().items()
    }

    # Heap-liveness facts ride the session's SCC-memoized summaries, so a
    # warm snapshot decodes exactly what the cold one computed — the
    # section is byte-stable across store warmth, hash seeds, and --jobs.
    from repro.analysis.heap_liveness import degraded_facts

    try:
        liveness = analysis.heap_liveness().to_json()
    except Exception:
        liveness = degraded_facts(program, cap=solved.d + 1).to_json()

    plan = plan_optimizations(program, session=analysis.session)
    optimized, steps = apply_plan(plan)
    report = check_program(optimized, path=rel)

    # Audit certification: a reuse decision stands only if the independent
    # auditor found no error-severity fact against its specialization
    # (context == "<function>_reuse", the name ``apply_plan`` introduces).
    condemned: dict[str, list[str]] = {}
    for diagnostic in report.errors:
        if diagnostic.context.endswith("_reuse"):
            condemned.setdefault(diagnostic.context, []).append(diagnostic.rule.id)

    decisions: list[dict] = []
    decertified: list[dict] = []
    for decision in plan.decisions:
        record = {
            "kind": decision.kind,
            "function": decision.function,
            "param_index": decision.param_index,
            "justification": decision.justification,
            "obligation": decision.obligation,
            "span": _span_text(decision.span),
        }
        rules = (
            sorted(set(condemned.get(f"{decision.function}_reuse", [])))
            if decision.kind == "reuse"
            else []
        )
        if rules:
            record["condemned_by"] = rules
            decertified.append(record)
        else:
            decisions.append(record)
    decision_sort = lambda r: (  # noqa: E731
        r["kind"], r["function"], r["param_index"], r["span"] or ""
    )
    decisions.sort(key=decision_sort)
    decertified.sort(key=decision_sort)

    findings = sorted(
        (
            {
                "rule": diag.rule.id,
                "severity": diag.severity.value,
                "span": diag.span_text(),
                "context": diag.context,
                "message": diag.message,
            }
            for diag in report.diagnostics
        ),
        key=lambda f: (f["rule"], f["span"] or "", f["context"], f["message"]),
    )
    rule_counts: dict[str, int] = {}
    for finding in findings:
        rule_counts[finding["rule"]] = rule_counts.get(finding["rule"], 0) + 1

    code = compile_program(optimized)
    listing = disassemble(code)

    return {
        "schema": ARTIFACT_SCHEMA,
        "path": rel,
        "ok": True,
        "provenance": {
            "engine": analysis.engine,
            "digest_version": DIGEST_VERSION,
            "artifact_schema": ARTIFACT_SCHEMA,
            "d": solved.d,
        },
        "bindings": bindings,
        "sharing": sharing,
        "liveness": liveness,
        "decisions": decisions,
        "decertified": decertified,
        "optimize_log": list(steps),
        "diagnostics": {
            "counts": report.counts(),
            "by_rule": rule_counts,
            "findings": findings,
            "pass_errors": dict(sorted(report.pass_errors.items())),
        },
        "machine": {
            "digest": "sha256:" + hashlib.sha256(listing.encode("utf-8")).hexdigest(),
            "instructions": sum(instruction_counts(code).values()),
            "by_opcode": instruction_counts(code),
        },
    }


def error_artifact(rel: str, error: str, quarantined: bool = False) -> dict:
    """The artifact for a file that produced no analysis: the failure *is*
    the recorded fact, so a file that starts failing shows up in compare as
    a lost file, not a hole in the tree."""
    doc = {"schema": ARTIFACT_SCHEMA, "path": rel, "ok": False, "error": error}
    if quarantined:
        doc["quarantined"] = True
    return doc


def artifact_path(out_dir: "str | Path", rel: str) -> Path:
    return Path(out_dir) / (rel + ARTIFACT_SUFFIX)


def write_artifact(out_dir: "str | Path", rel: str, document: dict) -> Path:
    target = artifact_path(out_dir, rel)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(canonical_bytes(document))
    return target


def snapshot_one(
    path: str,
    store_root: "str | None",
    d: "int | None" = None,
    max_iterations: "int | None" = None,
    check: bool = False,
    deadline_ms: "float | None" = None,
    engine: "str | None" = None,
    out_dir: "str | None" = None,
    rel: "str | None" = None,
):
    """Worker body for ``repro diff snapshot`` — the drop-in
    :func:`repro.batch.analyze_one` replacement (same leading signature, so
    it rides the same supervision), plus the artifact destination appended
    by the driver's ``worker_extra``.

    ``check`` and ``deadline_ms`` are accepted for signature compatibility
    and ignored: a snapshot always audits (certification needs it) and
    never degrades (a ``W^τ`` fallback would depend on machine load, and
    artifacts must be byte-stable).
    """
    from repro.batch import FileReport
    from repro.lang.parser import parse_program
    from repro.store import AnalysisStore

    assert out_dir is not None and rel is not None
    try:
        program = parse_program(Path(path).read_text())
        store = AnalysisStore(store_root) if store_root else None
        document = snapshot_program(
            program, rel, store=store, engine=engine, d=d,
            max_iterations=max_iterations,
        )
        write_artifact(out_dir, rel, document)
        # The checker's findings live in the artifact (they are *facts* to
        # diff), deliberately not on the report: pre-existing corpus
        # findings must not turn a successful snapshot into exit 4.
        return FileReport(
            path=str(path),
            ok=True,
            d=document["provenance"]["d"],
            functions=sum(
                1 for b in document["bindings"].values() if b.get("is_function")
            ),
        )
    except Exception as error:  # a bad corpus file must not sink the run
        detail = f"{type(error).__name__}: {error}"
        write_artifact(out_dir, rel, error_artifact(rel, detail))
        return FileReport(path=str(path), ok=False, error=detail)


def corpus_relative(inputs, roots) -> dict[str, str]:
    """Map each (resolved) input path to its corpus-relative artifact key:
    relative to the first directory root containing it, else the bare file
    name.  Colliding keys are an error — two artifacts must never share a
    slot."""
    from repro.batch import BatchInputError

    resolved_roots = [Path(r).resolve() for r in roots]
    rels: dict[str, str] = {}
    used: dict[str, str] = {}
    for item in inputs:
        path = Path(item)
        rel: "str | None" = None
        for root in resolved_roots:
            if root.is_dir():
                try:
                    rel = path.relative_to(root).as_posix()
                    break
                except ValueError:
                    continue
        if rel is None:
            rel = path.name
        if rel in used and used[rel] != str(path):
            raise BatchInputError(
                f"artifact path collision: {used[rel]} and {path} both map "
                f"to {rel!r}; snapshot them from a common root directory"
            )
        used[rel] = str(path)
        rels[str(path)] = rel
    return rels


def snapshot_corpus(
    paths,
    out_dir: "str | Path",
    jobs: int = 1,
    store_root: "str | Path | None" = None,
    engine: "str | None" = None,
    d: "int | None" = None,
    max_iterations: "int | None" = None,
    timeout_s: "float | None" = None,
    retry=None,
    fault_plan=None,
):
    """Snapshot a corpus into ``out_dir`` through the supervised batch
    machinery; returns the :class:`~repro.batch.BatchReport`.

    Every input gets an artifact: worker-written on success or contained
    failure, driver-written for quarantined files (a crashed-out worker
    leaves no artifact behind).  The tree also carries an ``_snapshot.json``
    index naming the engine and the artifact set.
    """
    from repro.batch import collect_inputs, run_batch
    from repro.escape.engine import default_engine, validate_engine

    inputs = collect_inputs(paths)
    rels = corpus_relative(inputs, paths)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    resolved_engine = validate_engine(engine) if engine is not None else default_engine()

    report = run_batch(
        paths,
        store_root=store_root,
        jobs=jobs,
        d=d,
        max_iterations=max_iterations,
        timeout_s=timeout_s,
        retry=retry,
        fault_plan=fault_plan,
        engine=resolved_engine,
        worker=snapshot_one,
        worker_extra=lambda p: (str(out), rels[str(p)]),
    )
    for file_report in report.reports:
        rel = rels.get(file_report.path)
        if rel is None:
            continue
        if file_report.quarantined and not artifact_path(out, rel).exists():
            write_artifact(
                out, rel, error_artifact(rel, file_report.error, quarantined=True)
            )
    index = {
        "schema": ARTIFACT_SCHEMA,
        "engine": resolved_engine,
        "files": sorted(rels.values()),
        "failed": sorted(
            rels[r.path] for r in report.reports if not r.ok and r.path in rels
        ),
    }
    (out / INDEX_NAME).write_bytes(canonical_bytes(index))
    return report


def tree_digest(out_dir: "str | Path") -> str:
    """One hash over a whole artifact tree (file names + bytes), for quick
    byte-identity assertions across snapshot runs."""
    out = Path(out_dir)
    digest = hashlib.sha256()
    for path in sorted(p for p in out.rglob("*") if p.is_file()):
        digest.update(canonical_dumps(path.relative_to(out).as_posix()).encode())
        digest.update(path.read_bytes())
    return "sha256:" + digest.hexdigest()
