"""Parallel batch analysis: a corpus of ``.nml`` programs through one store.

``repro batch <dir>`` fans the corpus across a ``ProcessPoolExecutor``.
Each worker builds its own :class:`~repro.query.AnalysisSession` (sessions
are process-local by design), but all workers attach the same
:class:`~repro.store.AnalysisStore`, so an SCC fixpoint solved by any
worker — the prelude's ``append``, ``map``, ``rev`` knots recur across
corpus programs — is decoded, not re-solved, by every other worker and by
every later run.  Provenance digests make that sound: two programs share a
stored entry exactly when their typed bindings and transitive analysis
inputs agree (:func:`repro.query.scc_digest`), and the store's atomic,
content-addressed writes make concurrent workers racing on a common digest
harmless (both write the same bytes).

The driver is deliberately boring: no shared state beyond the store
directory, workers return plain picklable :class:`FileReport`\\ s, a file
that fails to parse or analyze is reported and does not sink the batch.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class FileReport:
    """One corpus file's outcome (picklable, across worker processes)."""

    path: str
    ok: bool
    error: str = ""
    d: int = -1
    functions: int = 0
    #: the worker session's accounting (:func:`repro.escape.report.stats_dict`)
    stats: dict = field(default_factory=dict)
    #: ``repro.check`` severity counts when the batch ran ``--check``
    #: (``{"error": n, "warning": n, "hint": n}``), else ``None``
    check: "dict | None" = None
    #: a checker crash, contained like an analysis error (the file's
    #: analysis results stand; its diagnostics are just missing)
    check_error: str = ""

    def line(self) -> str:
        if not self.ok:
            return f"{self.path}: ERROR {self.error}"
        text = (
            f"{self.path}: ok — {self.functions} function(s), d={self.d}, "
            f"scc {self.stats.get('scc_hits', 0)} hit(s) / "
            f"{self.stats.get('scc_misses', 0)} miss(es), "
            f"{self.stats.get('iterations', 0)} iteration(s)"
        )
        if self.check_error:
            text += f", check CRASHED ({self.check_error})"
        elif self.check is not None:
            text += (
                f", check {self.check.get('error', 0)} error(s) / "
                f"{self.check.get('warning', 0)} warning(s) / "
                f"{self.check.get('hint', 0)} hint(s)"
            )
        return text


@dataclass
class BatchReport:
    """The whole batch: per-file reports plus fleet-wide totals."""

    reports: list[FileReport]
    jobs: int
    store_root: str | None

    @property
    def ok(self) -> bool:
        return bool(self.reports) and all(r.ok for r in self.reports)

    @property
    def check_findings(self) -> int:
        """Error-severity checker findings fleet-wide; checker crashes
        count (a file whose diagnostics are missing is not certified)."""
        return sum(
            (r.check or {}).get("error", 0) + (1 if r.check_error else 0)
            for r in self.reports
        )

    def totals(self) -> dict[str, int]:
        """Integer stats summed across every successful file (the nested
        ``store`` section is flattened to ``store_*`` keys; checker counts
        to ``check_*``)."""
        out: dict[str, int] = {}
        for report in self.reports:
            if not report.ok:
                continue
            for key, value in report.stats.items():
                if isinstance(value, bool):
                    continue
                if isinstance(value, int):
                    out[key] = out.get(key, 0) + value
                elif isinstance(value, dict):
                    for sub, sub_value in value.items():
                        if isinstance(sub_value, int) and not isinstance(
                            sub_value, bool
                        ):
                            flat = f"{key}_{sub}"
                            out[flat] = out.get(flat, 0) + sub_value
            if report.check is not None:
                for severity, count in report.check.items():
                    if isinstance(count, int) and not isinstance(count, bool):
                        flat = f"check_{severity}"
                        out[flat] = out.get(flat, 0) + count
            if report.check_error:
                out["check_crashes"] = out.get("check_crashes", 0) + 1
        return out

    def summary(self) -> str:
        totals = self.totals()
        failed = sum(1 for r in self.reports if not r.ok)
        lines = [
            f"{len(self.reports)} file(s), {self.jobs} job(s)"
            + (f", {failed} failed" if failed else "")
            + (f", store: {self.store_root}" if self.store_root else ", no store")
        ]
        if totals:
            lines.append(
                f"scc cache {totals.get('scc_hits', 0)} hit(s) / "
                f"{totals.get('scc_misses', 0)} miss(es), "
                f"{totals.get('iterations', 0)} fixpoint iteration(s), "
                f"{totals.get('eval_steps', 0)} eval step(s)"
            )
            if self.store_root:
                lines.append(
                    f"store {totals.get('store_hits', 0)} hit(s) / "
                    f"{totals.get('store_misses', 0)} miss(es) / "
                    f"{totals.get('store_writes', 0)} write(s)"
                )
        if any(r.check is not None or r.check_error for r in self.reports):
            crashes = totals.get("check_crashes", 0)
            lines.append(
                f"check {totals.get('check_error', 0)} error(s) / "
                f"{totals.get('check_warning', 0)} warning(s) / "
                f"{totals.get('check_hint', 0)} hint(s)"
                + (f", {crashes} checker crash(es)" if crashes else "")
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "store": self.store_root,
            "ok": self.ok,
            "files": [
                {
                    "path": r.path,
                    "ok": r.ok,
                    **({"error": r.error} if not r.ok else {}),
                    **({"d": r.d, "functions": r.functions, "stats": r.stats} if r.ok else {}),
                    **({"check": r.check} if r.check is not None else {}),
                    **({"check_error": r.check_error} if r.check_error else {}),
                }
                for r in self.reports
            ],
            "totals": self.totals(),
        }


def collect_inputs(paths: "list[str | Path]") -> list[Path]:
    """Expand paths into the corpus: directories recurse to ``*.nml``,
    files pass through; order is deterministic and duplicates dropped."""
    inputs: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        found = sorted(path.rglob("*.nml")) if path.is_dir() else [path]
        for item in found:
            resolved = item.resolve()
            if resolved not in seen:
                seen.add(resolved)
                inputs.append(item)
    return inputs


def analyze_one(
    path: str,
    store_root: str | None,
    d: int | None = None,
    max_iterations: int | None = None,
    check: bool = False,
) -> FileReport:
    """Worker body: fully analyze one file (every function, every
    parameter — the same questions ``repro report`` asks), sharing SCC
    results through the store at ``store_root``.

    Module-level and argument-picklable on purpose: ``ProcessPoolExecutor``
    ships it to workers under any start method.
    """
    from repro.escape.analyzer import EscapeAnalysis
    from repro.escape.report import stats_dict
    from repro.lang.parser import parse_program
    from repro.store import AnalysisStore
    from repro.types.types import arity

    try:
        program = parse_program(Path(path).read_text())
        store = AnalysisStore(store_root) if store_root else None
        analysis = EscapeAnalysis(
            program, d=d, max_iterations=max_iterations, store=store
        )
        solved = analysis.solve(None)
        functions = 0
        for name in program.binding_names():
            if arity(analysis.scheme(name).body) == 0:
                continue
            analysis.global_all(name)
            functions += 1
        check_counts: dict | None = None
        check_error = ""
        if check:
            try:
                from repro.check import check_program

                check_counts = check_program(program, path=str(path)).counts()
            except Exception as error:  # contained like an analysis error
                check_error = f"{type(error).__name__}: {error}"
        return FileReport(
            path=str(path),
            ok=True,
            d=solved.d,
            functions=functions,
            stats=stats_dict(analysis.stats),
            check=check_counts,
            check_error=check_error,
        )
    except Exception as error:  # a bad corpus file must not sink the batch
        return FileReport(
            path=str(path), ok=False, error=f"{type(error).__name__}: {error}"
        )


def _analyze_star(packed: tuple) -> FileReport:
    return analyze_one(*packed)


def run_batch(
    paths: "list[str | Path]",
    store_root: "str | Path | None" = None,
    jobs: int = 1,
    d: int | None = None,
    max_iterations: int | None = None,
    check: bool = False,
) -> BatchReport:
    """Analyze the corpus, ``jobs``-wide.  ``jobs <= 1`` runs in-process
    (no executor), which is also the fault-injection-friendly path."""
    inputs = collect_inputs(paths)
    root = str(store_root) if store_root is not None else None
    work = [(str(p), root, d, max_iterations, check) for p in inputs]
    if jobs <= 1 or len(work) <= 1:
        reports = [_analyze_star(item) for item in work]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            reports = list(pool.map(_analyze_star, work))
    return BatchReport(reports=reports, jobs=max(1, jobs), store_root=root)
