"""M1 — the operational layer (§3.3): machine ≡ interpreter.

§3.3: "it is an operational semantics … of which our escape semantics can
be considered an abstraction.  Although we do not have space … we can give
such a definition."  This bench gives it: the compiled stack machine and
the tree-walking interpreter must agree on results *and on every storage
event* — allocations, reuses, applications, region reclamation — across the
paper's programs and their optimized variants.
"""

from repro.bench.tables import print_table
from repro.bench.workloads import literal, random_int_list
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.machine.machine import run_compiled
from repro.opt.pipeline import (
    paper_block_allocated,
    paper_ps_double_prime,
    paper_stack_allocated,
)
from repro.semantics.interp import run_program


def test_m1_equivalence_matrix(benchmark):
    cases = {
        "PS (paper input)": paper_partition_sort(),
        "PS'' (reuse)": paper_ps_double_prime().program,
        "PS stack-allocated": paper_stack_allocated().program,
        "PS block-allocated": paper_block_allocated(15).program,
        "PS (random 40)": prelude_program(
            ["ps"], f"ps {literal(random_int_list(40, seed=8))}"
        ),
    }

    def run_matrix():
        rows = []
        for name, program in cases.items():
            interp_result, im = run_program(program)
            machine_result, mm = run_compiled(program)
            rows.append((name, interp_result, machine_result, im, mm))
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = []
    for name, interp_result, machine_result, im, mm in rows:
        assert machine_result == interp_result, name
        for counter in ("heap_allocs", "reused", "stack_reclaimed", "block_reclaimed", "applications"):
            assert getattr(im, counter) == getattr(mm, counter), (name, counter)
        table.append(
            [name, im.heap_allocs, mm.heap_allocs, im.reused, mm.reused, "="]
        )

    print_table(
        ["program", "interp allocs", "machine allocs", "interp reused", "machine reused", "agree"],
        table,
        title="M1: interpreter vs abstract machine (results and storage events)",
    )


def test_m1_machine_latency(benchmark):
    program = paper_partition_sort()
    result, _ = benchmark(run_compiled, program)
    assert result == [1, 2, 3, 4, 5, 7]


def test_m1_interpreter_latency(benchmark):
    program = paper_partition_sort()
    result, _ = benchmark(run_program, program)
    assert result == [1, 2, 3, 4, 5, 7]


def test_m1_deep_recursion_headroom(benchmark):
    # The machine's frames live on the Python heap: list length 50k is
    # routine where the interpreter would need a 100k recursion limit.
    program = prelude_program(["create_list", "sum"], "sum (create_list 20000)")
    result, _ = benchmark.pedantic(run_compiled, args=(program,), rounds=1, iterations=1)
    assert result == 20000 * 20001 // 2
