"""The resilience policy engine: retry, deadline, breaker, quarantine.

The paper's ``W^τ`` worst case gives every consumer of the analysis a sound
fallback answer, which turns "keep the service up" from a best-effort goal
into a contract: *any* failure short of an untypeable input can be absorbed
by degrading, retrying, or isolating — never by refusing to answer.  This
module is the policy layer that the supervised batch driver
(:mod:`repro.batch`) and the ``repro serve`` daemon (:mod:`repro.serve`)
share:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic** jitter: the delay for ``(key, attempt)`` is a pure
  function of the policy seed, so a failing schedule replays exactly (the
  same property :mod:`repro.robust.faults` gives fault injection).
* :class:`CircuitBreaker` — per-target failure accounting.  A target that
  keeps failing trips open; while open, callers short-circuit to the
  degraded answer immediately instead of burning a worker on a known-bad
  target; after a cooldown one probe (half-open) decides whether to close.
* :class:`Quarantine` — the terminal state for poison inputs: a target
  that exhausted its attempts is recorded (with every attempt's reason)
  and excluded, so one pathological file can never sink a batch or pin a
  worker pool.
* :class:`Resilience` — composes the three around a callable for
  *in-process* consumers (the daemon).  Deadlines in-process are
  cooperative — enforced by the :class:`~repro.robust.budget.BudgetMeter`
  the analysis ticks — while the batch supervisor enforces them
  preemptively by killing worker processes; both express the same
  :class:`ResiliencePolicy`.

Every decision is observable: ``retry``, ``timeout``, ``quarantine`` and
``circuit_state`` events flow through :mod:`repro.obs` (schema-validated
like every other event), and consumers fold counts into the
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro.obs import tracer as obs
from repro.robust.errors import Severity, classify, reason_for

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "Quarantine",
    "QuarantineEntry",
    "ResiliencePolicy",
    "Resilience",
    "Outcome",
]


# -- retry with deterministic jitter -----------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a failed target, and how long to wait.

    ``delay(key, attempt)`` is exponential backoff with multiplicative
    jitter derived from ``sha256(seed, key, attempt)`` — deterministic per
    (policy, target, attempt), decorrelated across targets, so a fleet of
    retrying workers never thunders in lockstep *and* a chaos run replays
    bit-identically under the same seed.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    #: total jitter band as a fraction of the capped delay: the jittered
    #: delay lies in ``[delay * (1 - jitter/2), delay * (1 + jitter/2)]``.
    jitter: float = 0.5
    seed: int = 0

    def jitter_fraction(self, key: str, attempt: int) -> float:
        """The deterministic uniform-in-[0,1) draw for ``(key, attempt)``."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based: the
        delay taken *after* the ``attempt``-th failure)."""
        raw = self.base_delay_s * self.multiplier ** max(0, attempt - 1)
        capped = min(self.max_delay_s, raw)
        fraction = self.jitter_fraction(key, attempt)
        return capped * (1.0 - self.jitter / 2.0 + self.jitter * fraction)

    def should_retry(self, attempt: int) -> bool:
        """True while ``attempt`` (1-based, just failed) leaves attempts."""
        return attempt < self.max_attempts


# -- circuit breaker ---------------------------------------------------------


class CircuitOpen(Exception):
    """Raised (or recorded) when a target's circuit refuses the call."""

    def __init__(self, target: str):
        super().__init__(f"circuit open for target {target!r}")
        self.target = target


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _Circuit:
    __slots__ = ("state", "failures", "opened_at")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class CircuitBreaker:
    """Per-target three-state breaker (closed → open → half-open).

    ``failure_threshold`` consecutive failures open a target's circuit;
    while open, :meth:`allow` refuses; after ``cooldown_s`` the next caller
    is admitted as the half-open probe, and its outcome closes or re-opens
    the circuit.  The clock is injectable so tests (and the chaos harness)
    need no real waiting.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self._circuits: dict[str, _Circuit] = {}

    def _get(self, target: str) -> _Circuit:
        circuit = self._circuits.get(target)
        if circuit is None:
            circuit = self._circuits[target] = _Circuit()
        return circuit

    def _transition(self, target: str, circuit: _Circuit, state: str) -> None:
        if circuit.state != state:
            circuit.state = state
            obs.emit("circuit_state", target=target, state=state)

    def state(self, target: str) -> str:
        """The target's current state (cooldown expiry applied lazily)."""
        circuit = self._circuits.get(target)
        if circuit is None:
            return CLOSED
        if (
            circuit.state == OPEN
            and self.clock() - circuit.opened_at >= self.cooldown_s
        ):
            self._transition(target, circuit, HALF_OPEN)
        return circuit.state

    def allow(self, target: str) -> bool:
        """May a call to ``target`` proceed right now?  Half-open admits
        exactly the callers that arrive before the probe's verdict."""
        return self.state(target) != OPEN

    def record_success(self, target: str) -> None:
        circuit = self._get(target)
        circuit.failures = 0
        self._transition(target, circuit, CLOSED)

    def record_failure(self, target: str) -> None:
        circuit = self._get(target)
        circuit.failures += 1
        if circuit.state == HALF_OPEN or circuit.failures >= self.failure_threshold:
            circuit.opened_at = self.clock()
            self._transition(target, circuit, OPEN)

    def snapshot(self) -> dict[str, str]:
        """Target → state, for ``/metrics`` and reports."""
        return {target: self.state(target) for target in sorted(self._circuits)}


# -- quarantine --------------------------------------------------------------


@dataclass
class QuarantineEntry:
    """One poisoned target: who, how many attempts, and why each failed."""

    key: str
    attempts: int
    reason: str
    errors: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "attempts": self.attempts,
            "reason": self.reason,
            "errors": list(self.errors),
        }


class Quarantine:
    """The registry of inputs that exhausted their attempts.

    Quarantine beats fail-fast for a service: the run keeps its throughput,
    the poison input keeps its full failure history in the report, and the
    caller still gets the sound degraded answer for it — nothing is
    silently dropped and nothing sinks the fleet.
    """

    def __init__(self) -> None:
        self._entries: dict[str, QuarantineEntry] = {}

    def add(self, key: str, attempts: int, reason: str, errors=()) -> QuarantineEntry:
        entry = QuarantineEntry(
            key=key, attempts=attempts, reason=reason, errors=list(errors)
        )
        self._entries[key] = entry
        obs.emit("quarantine", key=key, attempts=attempts, reason=reason)
        return entry

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[QuarantineEntry]:
        return [self._entries[key] for key in sorted(self._entries)]

    def to_json(self) -> list[dict]:
        return [entry.to_json() for entry in self.entries()]


# -- the composed policy -----------------------------------------------------


@dataclass(frozen=True)
class ResiliencePolicy:
    """One bundle of resilience configuration a consumer can thread around.

    ``deadline_s`` bounds one *attempt*: cooperatively (budget meter) for
    in-process execution, preemptively (worker kill) under the batch
    supervisor.  ``None`` disables the bound.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline_s: float | None = None
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0

    def make_breaker(self, clock=time.monotonic) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            cooldown_s=self.breaker_cooldown_s,
            clock=clock,
        )


@dataclass(frozen=True)
class Outcome:
    """What :meth:`Resilience.run` produced for one key.

    Exactly one of three shapes:

    * ``ok``          — ``value`` holds the callable's result;
    * circuit refusal — ``circuit_open`` is True, no attempt was made;
    * exhausted       — ``quarantined`` is True and the entry records every
      attempt's failure.
    """

    key: str
    value: object = None
    ok: bool = False
    attempts: int = 0
    circuit_open: bool = False
    quarantined: bool = False
    reason: str = ""
    errors: tuple[str, ...] = ()


class Resilience:
    """Run callables under one policy, with shared breaker and quarantine.

    The daemon holds one instance for its whole lifetime, so failure
    history accumulates across requests (that is what makes the breaker
    and quarantine useful); the batch driver builds one per run.
    """

    def __init__(
        self,
        policy: ResiliencePolicy | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.policy = policy or ResiliencePolicy()
        self.breaker = self.policy.make_breaker(clock=clock)
        self.quarantine = Quarantine()
        self._sleep = sleep

    def run(self, key: str, fn) -> Outcome:
        """Call ``fn()`` for ``key`` under the policy.

        Fatal errors (per :func:`repro.robust.errors.classify`) propagate —
        there is nothing sound to retry toward; every other failure is
        retried with backoff until the policy is exhausted, at which point
        the key is quarantined and the failure history returned.
        """
        if key in self.quarantine:
            return Outcome(key=key, quarantined=True, reason="quarantined")
        if not self.breaker.allow(key):
            return Outcome(key=key, circuit_open=True, reason="circuit-open")
        retry = self.policy.retry
        errors: list[str] = []
        attempt = 0
        while True:
            attempt += 1
            try:
                value = fn()
            except Exception as error:
                if classify(error) is Severity.FATAL:
                    self.breaker.record_failure(key)
                    raise
                errors.append(f"{type(error).__name__}: {error}")
                self.breaker.record_failure(key)
                if retry.should_retry(attempt):
                    delay = retry.delay(key, attempt)
                    obs.emit(
                        "retry",
                        key=key,
                        attempt=attempt,
                        delay_s=round(delay, 9),
                        reason=reason_for(error),
                    )
                    self._sleep(delay)
                    continue
                entry = self.quarantine.add(
                    key, attempts=attempt, reason=reason_for(error), errors=errors
                )
                return Outcome(
                    key=key,
                    attempts=attempt,
                    quarantined=True,
                    reason=entry.reason,
                    errors=tuple(errors),
                )
            self.breaker.record_success(key)
            return Outcome(key=key, value=value, ok=True, attempts=attempt)
