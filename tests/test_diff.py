"""The corpus-scale differential regression harness (:mod:`repro.diff`):
artifact byte-stability, lattice-ordered comparison, audit certification,
the planted-regression drill, and the seed-manifested generated corpus."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.diff.compare import (
    DEFAULT_GATE,
    Comparison,
    CompareError,
    compare_trees,
)
from repro.diff.snapshot import (
    snapshot_corpus,
    snapshot_program,
    tree_digest,
    write_artifact,
)
from repro.lang.parser import parse_program
from repro.lang.prelude import prelude_source
from repro.robust.faults import FaultPlan

APPEND = prelude_source(["append"], "append [1, 2] [3]")

#: Baseline grants a reuse decision on f's parameter (one DCONS site: the
#: two sibling cons sites share an execution path, so the path-disjointness
#: gate keeps exactly one).  Under ``unsound_reuse_at``, the unsafe site
#: selection keeps BOTH — the donor is recycled twice on one path, the
#: auditor condemns the specialization (AUD004/AUD005), and the snapshot
#: decertifies the decision.
PLANTED = "f l = (cons (car l) nil, cons (car l) nil);\nf [1, 2]\n"


@pytest.fixture
def corpus(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "append.nml").write_text(APPEND)
    (root / "planted.nml").write_text(PLANTED)
    return root


def _load(tree: Path, rel: str) -> dict:
    return json.loads((tree / (rel + ".json")).read_text())


class TestSnapshotArtifacts:
    def test_artifact_records_all_sections(self, corpus, tmp_path):
        out = tmp_path / "snap"
        report = snapshot_corpus([corpus], out)
        assert report.ok
        doc = _load(out, "append.nml")
        assert doc["ok"] and doc["path"] == "append.nml"
        assert doc["provenance"]["engine"] == "worklist"
        append = doc["bindings"]["append"]
        assert append["is_function"]
        assert append["scheme"].startswith("forall t1.")
        assert append["params"][0]["value"].startswith("<")
        assert "fingerprint" in append
        assert doc["machine"]["digest"].startswith("sha256:")
        assert doc["machine"]["instructions"] == sum(
            doc["machine"]["by_opcode"].values()
        )
        assert isinstance(doc["diagnostics"]["findings"], list)
        assert (out / "_snapshot.json").is_file()

    def test_snapshots_are_byte_identical_across_runs(self, corpus, tmp_path):
        # The headline stability property: two snapshots of the same
        # corpus produce the same bytes — schemes are renumbered (no
        # fresh-variable counter leak), nothing warmth- or seed-dependent
        # is recorded.  Cross-PYTHONHASHSEED identity is pinned end-to-end
        # in test_cli.py via subprocesses.
        a, b = tmp_path / "a", tmp_path / "b"
        snapshot_corpus([corpus], a)
        snapshot_corpus([corpus], b)
        assert tree_digest(a) == tree_digest(b)

    def test_warm_store_does_not_change_bytes(self, corpus, tmp_path):
        store = tmp_path / "store"
        a, b = tmp_path / "a", tmp_path / "b"
        snapshot_corpus([corpus], a, store_root=store)  # cold
        snapshot_corpus([corpus], b, store_root=store)  # warm
        assert tree_digest(a) == tree_digest(b)

    def test_parallel_jobs_do_not_change_bytes(self, corpus, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        snapshot_corpus([corpus], a, jobs=1)
        snapshot_corpus([corpus], b, jobs=2)
        assert tree_digest(a) == tree_digest(b)

    def test_bad_file_gets_error_artifact_not_a_hole(self, corpus, tmp_path):
        (corpus / "bad.nml").write_text("this is not ( valid")
        out = tmp_path / "snap"
        snapshot_corpus([corpus], out)
        doc = _load(out, "bad.nml")
        assert doc["ok"] is False and doc["error"]
        index = json.loads((out / "_snapshot.json").read_text())
        assert "bad.nml" in index["failed"]
        assert "bad.nml" in index["files"]

    def test_artifact_path_collision_is_rejected(self, corpus, tmp_path):
        from repro.batch import BatchInputError

        other = tmp_path / "other"
        other.mkdir()
        (other / "append.nml").write_text(APPEND)
        with pytest.raises(BatchInputError, match="collision"):
            snapshot_corpus(
                [corpus / "append.nml", other / "append.nml"], tmp_path / "s"
            )


class TestCompare:
    def test_self_compare_is_empty(self, corpus, tmp_path):
        out = tmp_path / "snap"
        snapshot_corpus([corpus], out)
        comparison = compare_trees(out, out)
        assert comparison.empty
        assert comparison.exit_code() == 0
        assert "no differences" in comparison.render()

    def test_missing_file_in_head_gates(self, corpus, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        snapshot_corpus([corpus], a)
        snapshot_corpus([corpus], b)
        (b / "append.nml.json").unlink()
        comparison = compare_trees(a, b)
        assert [e["path"] for e in comparison.entries["file_missing_head"]] == [
            "append.nml"
        ]
        assert comparison.exit_code() == 4
        # the mirror direction is benign (a new corpus file is not a loss)
        assert compare_trees(b, a).exit_code() == 3

    def test_new_parse_error_gates(self, corpus, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        snapshot_corpus([corpus], a)
        (corpus / "append.nml").write_text("no longer ( valid")
        snapshot_corpus([corpus], b)
        comparison = compare_trees(a, b)
        assert comparison.entries["file_error_new"][0]["path"] == "append.nml"
        assert comparison.exit_code() == 4

    def test_unreadable_tree_is_an_error(self, tmp_path):
        with pytest.raises(CompareError, match="not a snapshot directory"):
            compare_trees(tmp_path / "ghost", tmp_path / "ghost")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(CompareError, match="no artifacts"):
            compare_trees(empty, empty)


class TestCompareCategories:
    """Category semantics on mutated artifacts — in particular that the
    lattice comparison uses the B_e order, not string equality."""

    @pytest.fixture
    def base_doc(self):
        return snapshot_program(parse_program(APPEND), "append.nml")

    def _compare_mutated(self, tmp_path, base_doc, mutate) -> Comparison:
        head_doc = copy.deepcopy(base_doc)
        mutate(head_doc)
        write_artifact(tmp_path / "base", "append.nml", base_doc)
        write_artifact(tmp_path / "head", "append.nml", head_doc)
        return compare_trees(tmp_path / "base", tmp_path / "head")

    def test_dropped_decision_is_lost_with_span(self, tmp_path, base_doc):
        assert base_doc["decisions"], "append must license an optimization"
        dropped = base_doc["decisions"][0]

        comparison = self._compare_mutated(
            tmp_path, base_doc, lambda d: d["decisions"].pop(0)
        )
        [entry] = comparison.entries["decision_lost"]
        assert entry["kind"] == dropped["kind"]
        assert entry["function"] == dropped["function"]
        assert entry["span"] == dropped["span"]
        assert "decision_lost" in comparison.gated()
        assert comparison.exit_code() == 4

    def test_lattice_weakened_uses_the_order(self, tmp_path, base_doc):
        # append's param 1 analyzes non-escaping; raise it to "top spine
        # escapes" in head — strictly above in B_e, so *weakened*.
        def weaken(doc):
            param = doc["bindings"]["append"]["params"][0]
            param["escapes"], param["escape_depth"] = 1, 1
            param["value"] = "<1,1>"

        comparison = self._compare_mutated(tmp_path, base_doc, weaken)
        [entry] = comparison.entries["lattice_weakened"]
        assert entry["binding"] == "append"
        assert comparison.exit_code() == 4

    def test_lattice_strengthened_is_benign(self, tmp_path, base_doc):
        # The mirror mutation: baseline claims an escape, head proves it
        # away.  Strictly below in B_e — improvement, not a regression.
        weak = copy.deepcopy(base_doc)
        param = weak["bindings"]["append"]["params"][0]
        param["escapes"], param["escape_depth"] = 1, 1
        param["value"] = "<1,1>"
        write_artifact(tmp_path / "base", "append.nml", weak)
        write_artifact(tmp_path / "head", "append.nml", base_doc)
        comparison = compare_trees(tmp_path / "base", tmp_path / "head")
        assert comparison.entries["lattice_strengthened"]
        assert not comparison.entries.get("lattice_weakened")
        assert comparison.exit_code() == 3

    def test_new_error_finding_gates_new_hint_does_not(self, tmp_path, base_doc):
        def add_error(doc):
            doc["diagnostics"]["findings"].append(
                {
                    "rule": "AUD003",
                    "severity": "error",
                    "span": "1:1-2",
                    "context": "append_reuse",
                    "message": "planted",
                }
            )

        gated = self._compare_mutated(tmp_path, base_doc, add_error)
        assert gated.entries["diagnostic_new_error"]
        assert gated.exit_code() == 4

        def add_hint(doc):
            doc["diagnostics"]["findings"].append(
                {
                    "rule": "AUD009",
                    "severity": "hint",
                    "span": "1:1-2",
                    "context": "append",
                    "message": "planted",
                }
            )

        benign = self._compare_mutated(tmp_path, base_doc, add_hint)
        assert benign.entries["diagnostic_new"]
        assert not benign.entries.get("diagnostic_new_error")
        assert benign.exit_code() == 3

    def test_resolved_diagnostic_pairs_by_identity_not_message(
        self, tmp_path, base_doc
    ):
        base_doc["diagnostics"]["findings"].append(
            {
                "rule": "AUD009",
                "severity": "hint",
                "span": "1:1-2",
                "context": "append",
                "message": "old wording",
            }
        )

        def reword(doc):
            doc["diagnostics"]["findings"][-1]["message"] = "new wording"

        comparison = self._compare_mutated(tmp_path, base_doc, reword)
        # same (rule, span, context) — a rewording is not churn at all
        assert comparison.empty

    def test_code_change_reports_opcode_delta(self, tmp_path, base_doc):
        def shrink(doc):
            doc["machine"]["digest"] = "sha256:planted"
            doc["machine"]["by_opcode"]["Apply"] -= 2
            doc["machine"]["instructions"] -= 2

        comparison = self._compare_mutated(tmp_path, base_doc, shrink)
        [entry] = comparison.entries["code_changed"]
        assert entry["delta"] == -2
        assert entry["by_opcode"] == {"Apply": -2}
        assert comparison.exit_code() == 3

    def test_gate_override(self, tmp_path, base_doc):
        def shrink(doc):
            doc["machine"]["digest"] = "sha256:planted"
            doc["machine"]["instructions"] -= 1

        head_doc = copy.deepcopy(base_doc)
        shrink(head_doc)
        write_artifact(tmp_path / "base", "append.nml", base_doc)
        write_artifact(tmp_path / "head", "append.nml", head_doc)
        strict = compare_trees(
            tmp_path / "base", tmp_path / "head", gate=frozenset({"code_changed"})
        )
        assert strict.exit_code() == 4
        assert "code_changed" in strict.gated()


class TestPlantedRegression:
    """The end-to-end drill ISSUE 9 asks for: plant an unsound-reuse fault
    in head, snapshot both, and the differ must report the lost decision
    (with its span), the new audit errors, and exit nonzero."""

    def test_fault_decertifies_and_compare_gates(self, corpus, tmp_path):
        base, head = tmp_path / "base", tmp_path / "head"
        # Snapshot only the planted file: the fault counter is global, and
        # reuse specializations in earlier corpus files would consume it.
        planted = corpus / "planted.nml"
        snapshot_corpus([planted], base)
        snapshot_corpus([planted], head, fault_plan=FaultPlan(unsound_reuse_at=1))

        baseline = _load(base, "planted.nml")
        reuse = next(d for d in baseline["decisions"] if d["kind"] == "reuse")
        assert reuse["function"] == "f" and reuse["span"]

        faulted = _load(head, "planted.nml")
        [decert] = faulted["decertified"]
        assert set(decert["condemned_by"]) == {"AUD004", "AUD005"}

        comparison = compare_trees(base, head)
        [entry] = comparison.entries["decision_decertified"]
        assert entry["function"] == "f"
        assert entry["span"] == reuse["span"]
        assert entry["condemned_by"] == ["AUD004", "AUD005"]
        assert comparison.entries["diagnostic_new_error"]
        assert comparison.exit_code() == 4
        assert "decision_decertified" in comparison.gated()
        assert "FAIL" in comparison.render()


MANIFEST_SUBSET = 12


@pytest.mark.skipif(
    not Path("examples/generated/MANIFEST.json").is_file(),
    reason="committed generated corpus not present",
)
class TestGeneratedCorpusProperty:
    """Property over the committed corpus: for every generated program,
    snapshotting twice yields byte-identical artifacts and an empty
    self-compare (a seed subset keeps the suite fast; CI runs all 200)."""

    def test_self_compare_of_generated_subset_is_empty(self, tmp_path):
        manifest = json.loads(Path("examples/generated/MANIFEST.json").read_text())
        subset = tmp_path / "subset"
        subset.mkdir()
        for entry in manifest["programs"][:MANIFEST_SUBSET]:
            source = Path("examples/generated") / entry["file"]
            (subset / entry["file"]).write_text(source.read_text())
        a, b = tmp_path / "a", tmp_path / "b"
        assert snapshot_corpus([subset], a).ok
        assert snapshot_corpus([subset], b).ok
        assert tree_digest(a) == tree_digest(b)
        comparison = compare_trees(a, b)
        assert comparison.empty and comparison.exit_code() == 0
        assert comparison.compared == MANIFEST_SUBSET


class TestGeneratedCorpusManifest:
    def test_generate_then_rematerialize_round_trips(self, tmp_path):
        from repro.diff.corpus import generate_corpus, load_manifest

        out = tmp_path / "gen"
        manifest = generate_corpus(out, count=6)
        assert manifest["count"] == 6
        files = sorted(p.name for p in out.glob("*.nml"))
        assert files == [e["file"] for e in manifest["programs"]]
        # second call takes the reproducible path: same manifest, same bytes
        before = tree_digest(out)
        assert generate_corpus(out, count=6) == load_manifest(out)
        assert tree_digest(out) == before

    def test_manifest_drift_fails_loudly(self, tmp_path):
        from repro.canonical import canonical_bytes
        from repro.diff.corpus import CorpusDriftError, generate_corpus

        out = tmp_path / "gen"
        manifest = generate_corpus(out, count=3)
        manifest["programs"][1]["sha256"] = "0" * 64
        (out / "MANIFEST.json").write_bytes(canonical_bytes(manifest))
        with pytest.raises(CorpusDriftError, match="gen-0001.nml"):
            generate_corpus(out, count=3)

    def test_generated_programs_parse_and_snapshot(self, tmp_path):
        from repro.diff.corpus import generate_corpus

        out = tmp_path / "gen"
        generate_corpus(out, count=4)
        report = snapshot_corpus([out], tmp_path / "snap")
        assert report.ok and len(report.reports) == 4


class TestDiffCli:
    def test_snapshot_compare_roundtrip(self, corpus, tmp_path, capsys):
        a = str(tmp_path / "a")
        b = str(tmp_path / "b")
        assert main(["diff", "snapshot", str(corpus), "--out", a, "--no-store"]) == 0
        assert main(["diff", "snapshot", str(corpus), "--out", b, "--no-store"]) == 0
        capsys.readouterr()
        assert main(["diff", "compare", a, b]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_compare_json_is_canonical(self, corpus, tmp_path, capsys):
        a = str(tmp_path / "a")
        assert main(["diff", "snapshot", str(corpus), "--out", a, "--no-store"]) == 0
        capsys.readouterr()
        assert main(["diff", "compare", a, a, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        assert doc["gate"] == sorted(DEFAULT_GATE)

    def test_snapshot_bad_input_exits_2(self, tmp_path, capsys):
        code = main(
            ["diff", "snapshot", str(tmp_path / "ghost"), "--out", str(tmp_path / "o")]
        )
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_compare_unknown_category_exits_2(self, tmp_path, capsys):
        code = main(["diff", "compare", "x", "y", "--fail-on", "bogus"])
        assert code == 2
        assert "unknown categories" in capsys.readouterr().err

    def test_compare_missing_tree_exits_1(self, tmp_path, capsys):
        code = main(
            ["diff", "compare", str(tmp_path / "nope"), str(tmp_path / "nope")]
        )
        assert code == 1

    def test_gen_corpus_cli(self, tmp_path, capsys):
        out = str(tmp_path / "gen")
        assert main(["diff", "gen-corpus", "--out", out, "--count", "3"]) == 0
        assert "3 generated program(s)" in capsys.readouterr().out
        assert (Path(out) / "MANIFEST.json").is_file()
