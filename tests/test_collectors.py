"""Differential tests across the collector zoo.

Every zoo member must be *observationally inert*: for any program, running
under mark-sweep, liveness-directed, or copying collection — with the
storage sanitizer armed — produces the same value (or the same error) and
zero sanitizer violations.  The liveness-directed member runs under the
interprocedural budgets from :mod:`repro.analysis.heap_liveness`; its
dead-but-reachable reclamations may surface as dangling-reference
*warnings* during later marks, never as use-after-free halts.
"""

import pytest

from repro.analysis.heap_liveness import analyze_program
from repro.lang.parser import parse_program
from repro.lang.prelude import prelude_program
from repro.semantics.gc import COLLECTORS, make_collector
from repro.semantics.heap import Heap
from repro.semantics.interp import Interpreter

from .strategies import materialize_program

#: Deterministic draws from the property suite's program distribution.
SEEDS = range(40)


def run_under(program, collector: str, threshold: int = 2):
    """(python value | error string, interpreter) under one collector."""
    budgets = None
    if collector == "liveness":
        facts = analyze_program(program)
        budgets = None if facts.degraded else facts.budget_map()
    interp = Interpreter(
        auto_gc=True,
        gc_threshold=threshold,
        sanitize=True,
        collector=collector,
        liveness=budgets,
    )
    try:
        result = interp.to_python(interp.run(program))
    except Exception as error:
        result = f"{type(error).__name__}: {error}"
    return result, interp


class TestMakeCollector:
    def test_every_name_constructs(self):
        for name in COLLECTORS:
            assert make_collector(name, Heap()).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown collector"):
            make_collector("generational", Heap())


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_collectors_agree_and_sanitizer_is_clean(self, seed):
        program, _ = materialize_program(seed)
        outcomes = {}
        for collector in COLLECTORS:
            result, interp = run_under(program, collector)
            outcomes[collector] = result
            # Zero use-after-free halts: reclaiming statically dead cells
            # must never make the mutator read a freed cell.
            assert interp.heap.sanitizer.clean, (
                f"seed {seed} under {collector}: "
                f"{interp.heap.sanitizer.violations}"
            )
        assert len({repr(r) for r in outcomes.values()}) == 1, (
            f"seed {seed} diverged: {outcomes}"
        )


class TestPreludePrograms:
    @pytest.mark.parametrize(
        "body", ["rev (iota 15)", "ps [5, 2, 7, 1, 3, 4, 9, 0]"]
    )
    def test_collectors_agree_on_real_workloads(self, body):
        names = ["rev", "iota"] if "iota" in body else ["ps"]
        program = prelude_program(names, body)
        results = {
            collector: run_under(program, collector, threshold=10)[0]
            for collector in COLLECTORS
        }
        assert len({repr(r) for r in results.values()}) == 1


class TestLivenessReclamation:
    def test_dead_binding_is_reclaimed_not_marked(self):
        src = (
            "junk = [1, 2, 3, 4, 5, 6, 7, 8];\n"
            "f l = if null l then 10 else 20;\n"
            "f junk"
        )
        program = parse_program(src)
        _, base = run_under(program, "mark-sweep", threshold=4)
        _, live = run_under(program, "liveness", threshold=4)
        # Strictly more cells reclaimed, strictly less mark work.
        assert live.metrics.gc_swept > base.metrics.gc_swept
        assert live.metrics.gc_marked < base.metrics.gc_marked

    def test_empty_budgets_degrade_to_mark_sweep(self):
        src = "xs = [1, 2, 3];\ncar xs"
        program = parse_program(src)
        interp = Interpreter(
            auto_gc=True, gc_threshold=1, sanitize=True,
            collector="liveness", liveness=None,
        )
        assert interp.to_python(interp.run(program)) == 1
        assert interp.heap.sanitizer.clean
