"""W1 — applicability contrast: partition sort vs mergesort.

The analysis doesn't just enable optimizations — it *refuses* them where
they'd be unsound.  `ps` never returns its argument's spine (`G = <1,0>`),
so its cells are reusable; `msort` returns its argument for singletons and
`merge` returns input suffixes (`G = <1,1>` everywhere), so the planner
must produce zero reuse decisions for it.
"""

import pytest

from repro.bench.tables import print_table
from repro.bench.workloads import literal, random_int_list
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import prelude_program
from repro.opt.driver import apply_plan, plan_optimizations
from repro.semantics.interp import run_program


def test_w1_planner_contrast(benchmark):
    values = random_int_list(24, seed=13)

    def plans():
        ps_plan = plan_optimizations(prelude_program(["ps"], f"ps {literal(values)}"))
        msort_plan = plan_optimizations(
            prelude_program(["msort"], f"msort {literal(values)}")
        )
        return ps_plan, msort_plan

    ps_plan, msort_plan = benchmark.pedantic(plans, rounds=1, iterations=1)

    assert len(ps_plan.by_kind("reuse")) >= 3  # append, split, ps
    assert ps_plan.by_kind("stack")  # the literal is safe in ps's activation
    assert msort_plan.by_kind("reuse") == []  # every spine escapes
    assert msort_plan.by_kind("stack") == []  # the literal escapes msort

    print_table(
        ["workload", "reuse decisions", "stack decisions", "why"],
        [
            ["ps (partition sort)", len(ps_plan.by_kind("reuse")),
             len(ps_plan.by_kind("stack")), "G(ps,1)=<1,0>: spine dies with the call"],
            ["msort (mergesort)", 0, 0, "G(msort,1)=<1,1>: singleton case returns l"],
        ],
        title="W1: the analysis grants and refuses optimizations per workload",
    )


def test_w1_applied_plans_behave(benchmark):
    values = random_int_list(24, seed=14)
    ps_program = prelude_program(["ps"], f"ps {literal(values)}")
    msort_program = prelude_program(["msort"], f"msort {literal(values)}")

    def run_both():
        ps_opt, _ = apply_plan(plan_optimizations(ps_program))
        msort_opt, _ = apply_plan(plan_optimizations(msort_program))
        return run_program(ps_opt), run_program(msort_opt), run_program(ps_program), run_program(msort_program)

    (ps_opt_res, ps_opt_m), (ms_opt_res, ms_opt_m), (ps_res, ps_m), (ms_res, ms_m) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    assert ps_opt_res == ps_res == sorted(values)
    assert ms_opt_res == ms_res == sorted(values)
    # ps improves; msort is untouched (no licensed decision changed it)
    assert ps_opt_m.heap_allocs < ps_m.heap_allocs
    assert ms_opt_m.heap_allocs == ms_m.heap_allocs
    assert ms_opt_m.reused == 0

    print_table(
        ["workload", "baseline heap cells", "after plan", "reused"],
        [
            ["ps", ps_m.heap_allocs, ps_opt_m.heap_allocs, ps_opt_m.reused],
            ["msort", ms_m.heap_allocs, ms_opt_m.heap_allocs, ms_opt_m.reused],
        ],
        title="W1: plan application effects",
    )
