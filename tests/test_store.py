"""Provenance digests, the on-disk :class:`~repro.store.AnalysisStore`,
and the serialization codec (:mod:`repro.escape.serialize`).

The contract under test: two sessions — in this process or another —
derive the *same* content digest for the same typed SCC under the same
analysis parameters, and a fixpoint decoded from the store is
bit-identical (by :func:`~repro.escape.abstract.fingerprint`) to the one a
fresh solve would produce, at zero fixpoint iterations.  Any damaged or
mismatched entry degrades to a correct re-solve, never a crash or a wrong
value.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest
from hypothesis import given, settings

from repro.escape.abstract import fingerprint
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.parser import parse_program
from repro.lang.prelude import paper_map_pair, paper_partition_sort, prelude_program
from repro.obs import RingBufferSink, Tracer, activate
from repro.obs.events import validate_trace
from repro.query import AnalysisSession, scc_digest
from repro.robust import faults
from repro.robust.faults import FaultPlan, StageFault
from repro.store import DEFAULT_REAP_AGE_S, SCHEMA_VERSION, AnalysisStore

from .strategies import list_function_program


def _fingerprints(session: AnalysisSession, solved) -> dict[str, object]:
    """Per-binding comparable images of the solved environment."""
    chain = solved.evaluator.chain
    out = {}
    for name in solved.program.binding_names():
        ty = solved.inference.scheme(name).body
        out[name] = fingerprint(solved.env[name], ty, chain)
    return out


class TestProvenanceDigests:
    def test_digests_equal_across_fresh_sessions(self, partition_sort):
        first = AnalysisSession(paper_partition_sort()).solve(None)
        second = AnalysisSession(partition_sort).solve(None)
        assert first.scc_digests == second.scc_digests
        assert set(first.scc_digests) == {"append", "split", "ps"}

    def test_digests_are_stable_hex_strings(self, partition_sort):
        # The point of the fix: id()-based tokens were process-local and
        # unpicklable; digests are plain content-derived strings.
        solved = AnalysisSession(partition_sort).solve(None)
        for digest in solved.scc_digests.values():
            assert isinstance(digest, str)
            int(digest, 16)
            assert len(digest) == 64
        json.dumps(solved.scc_digests)

    def test_digest_depends_on_d(self, partition_sort):
        at_2 = AnalysisSession(partition_sort, d=2).solve(None)
        at_3 = AnalysisSession(partition_sort, d=3).solve(None)
        for name in at_2.scc_digests:
            assert at_2.scc_digests[name] != at_3.scc_digests[name]

    def test_digest_depends_on_max_iterations(self, partition_sort):
        base = AnalysisSession(partition_sort).solve(None)
        capped = AnalysisSession(partition_sort, max_iterations=7).solve(None)
        for name in base.scc_digests:
            assert base.scc_digests[name] != capped.scc_digests[name]

    def test_digest_chains_dependency_digests(self):
        # rev's own binding is identical in both programs; only its
        # dependency append differs (extra no-op branch nesting changes
        # append's AST, hence its digest, hence rev's).
        rev = "rev x = if (null x) then nil else append (rev (cdr x)) (cons (car x) nil);"
        a = parse_program(
            "append x y = if (null x) then y else cons (car x) (append (cdr x) y);\n"
            + rev
            + "\nrev [1, 2, 3]"
        )
        b = parse_program(
            "append x y = if (null x) then if (null x) then y else y"
            " else cons (car x) (append (cdr x) y);\n" + rev + "\nrev [1, 2, 3]"
        )
        da = AnalysisSession(a, d=1).solve(None).scc_digests
        db = AnalysisSession(b, d=1).solve(None).scc_digests
        assert da["append"] != db["append"]
        assert da["rev"] != db["rev"]

    def test_identical_sccs_share_digests_across_programs(self):
        # Same prelude append at the same pinned d: one digest, two
        # programs — the property cross-program store sharing rests on.
        a = AnalysisSession(prelude_program(["append", "rev"]), d=2).solve(None)
        b = AnalysisSession(prelude_program(["append", "heads"]), d=2).solve(None)
        assert a.scc_digests["append"] == b.scc_digests["append"]

    def test_scc_digest_orders_dependencies_canonically(self):
        deps = {"a": "1" * 64, "b": "2" * 64}
        assert scc_digest("fp", 1, None, deps) == scc_digest(
            "fp", 1, None, dict(reversed(list(deps.items())))
        )
        assert scc_digest("fp", 1, None, deps) != scc_digest("fp", 1, None, {})

    @settings(max_examples=25, deadline=None)
    @given(case=list_function_program())
    def test_generated_programs_digest_deterministically(self, case):
        program, _ = case
        first = AnalysisSession(program).solve(None)
        second = AnalysisSession(program).solve(None)
        assert first.scc_digests == second.scc_digests


class TestStoreRoundTrip:
    def test_warm_session_decodes_bit_identical_values(self, tmp_path, partition_sort):
        store = AnalysisStore(tmp_path / "store")
        cold = AnalysisSession(paper_partition_sort(), store=store)
        cold_solved = cold.solve(None)
        assert cold.stats.store_writes == 3

        warm = AnalysisSession(partition_sort, store=AnalysisStore(tmp_path / "store"))
        warm_solved = warm.solve(None)
        assert warm.stats.store_hits == 3
        assert warm.stats.scc_misses == 0
        assert warm.stats.iterations == 0
        assert _fingerprints(cold, cold_solved) == _fingerprints(warm, warm_solved)

    def test_warm_answers_match_cold_answers(self, tmp_path, map_pair):
        store_root = tmp_path / "store"
        cold = EscapeAnalysis(paper_map_pair(), store=AnalysisStore(store_root))
        warm = EscapeAnalysis(map_pair, store=AnalysisStore(store_root))
        for analysis in (cold, warm):
            analysis.solve(None)
        for name in ("map", "pair"):
            cold_results = cold.global_all(name)
            warm_results = warm.global_all(name)
            assert [str(r.result) for r in warm_results] == [
                str(r.result) for r in cold_results
            ]
        assert warm.stats.iterations == 0

    def test_second_write_is_skipped(self, tmp_path, partition_sort):
        store = AnalysisStore(tmp_path / "store")
        AnalysisSession(paper_partition_sort(), store=store).solve(None)
        again = AnalysisSession(partition_sort, store=store)
        again.solve(None)
        assert again.stats.store_writes == 0
        assert len(store) == 3

    def test_stored_payloads_are_canonical_json(self, tmp_path, partition_sort):
        store = AnalysisStore(tmp_path / "store")
        AnalysisSession(partition_sort, store=store).solve(None)
        for digest in store.digests():
            raw = store._path(digest).read_text()
            doc = json.loads(raw)
            assert doc["schema"] == SCHEMA_VERSION
            assert doc["digest"] == digest
            # canonical: re-dumping with sorted keys reproduces the bytes
            assert json.dumps(doc, sort_keys=True, separators=(",", ":")) == raw

    def test_traces_and_iterates_replay_from_store(self, tmp_path, partition_sort):
        store_root = tmp_path / "store"
        cold = AnalysisSession(paper_partition_sort(), store=AnalysisStore(store_root))
        cold_solved = cold.solve(None)
        warm = AnalysisSession(partition_sort, store=AnalysisStore(store_root))
        warm_solved = warm.solve(None)
        for name in ("append", "split", "ps"):
            assert warm_solved.trace(name).iterations == cold_solved.trace(name).iterations
            assert warm_solved.trace(name).converged
            assert len(warm_solved.iterates_for(name)) == len(
                cold_solved.iterates_for(name)
            )


class TestStoreFallbacks:
    """A damaged tier-two must be indistinguishable from a cold one."""

    def _warm_after(self, tmp_path, damage) -> AnalysisSession:
        program = paper_partition_sort()
        store = AnalysisStore(tmp_path / "store")
        AnalysisSession(program, store=store).solve(None)
        for digest in store.digests():
            damage(store._path(digest))
        return AnalysisSession(paper_partition_sort(), store=store)

    def _assert_resolved_correctly(self, session: AnalysisSession) -> None:
        solved = session.solve(None)
        assert session.stats.store_hits == 0
        assert session.stats.scc_misses == 3
        assert session.stats.iterations > 0
        baseline = AnalysisSession(paper_partition_sort())
        assert _fingerprints(session, solved) == _fingerprints(
            baseline, baseline.solve(None)
        )

    def test_truncated_entries_degrade_to_resolve(self, tmp_path):
        session = self._warm_after(
            tmp_path, lambda path: path.write_text(path.read_text()[: len(path.read_text()) // 2])
        )
        self._assert_resolved_correctly(session)

    def test_garbage_entries_degrade_to_resolve(self, tmp_path):
        session = self._warm_after(tmp_path, lambda path: path.write_text("}{ not json"))
        self._assert_resolved_correctly(session)

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        def bump(path):
            doc = json.loads(path.read_text())
            doc["schema"] = SCHEMA_VERSION + 1
            path.write_text(json.dumps(doc))

        session = self._warm_after(tmp_path, bump)
        self._assert_resolved_correctly(session)

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        def swap(path):
            doc = json.loads(path.read_text())
            doc["digest"] = "0" * 64
            path.write_text(json.dumps(doc))

        session = self._warm_after(tmp_path, swap)
        self._assert_resolved_correctly(session)

    def test_injected_store_load_fault_degrades_to_resolve(self, tmp_path):
        program = paper_partition_sort()
        store = AnalysisStore(tmp_path / "store")
        AnalysisSession(program, store=store).solve(None)
        session = AnalysisSession(paper_partition_sort(), store=store)
        with faults.inject(
            FaultPlan(stage_faults=(StageFault(stage="store_load", at=1),))
        ) as injector:
            solved = session.solve(None)
        assert "store_load@1" in " ".join(injector.fired) or injector.fired
        # first read failed; later reads may hit — but the answer is right
        baseline = AnalysisSession(paper_partition_sort())
        assert _fingerprints(session, solved) == _fingerprints(
            baseline, baseline.solve(None)
        )
        assert session.stats.store_misses >= 1

    def test_unwritable_store_is_silent(self, tmp_path):
        root = tmp_path / "store"
        root.write_text("i am a file, not a directory")
        session = AnalysisSession(paper_partition_sort(), store=AnalysisStore(root))
        solved = session.solve(None)
        assert session.stats.store_writes == 0
        baseline = AnalysisSession(paper_partition_sort())
        assert _fingerprints(session, solved) == _fingerprints(
            baseline, baseline.solve(None)
        )


_CHILD = textwrap.dedent(
    """
    import json, sys
    from repro.escape.abstract import fingerprint
    from repro.lang.prelude import paper_partition_sort
    from repro.query import AnalysisSession
    from repro.store import AnalysisStore

    session = AnalysisSession(paper_partition_sort(), store=AnalysisStore(sys.argv[1]))
    solved = session.solve(None)
    chain = solved.evaluator.chain
    prints = {
        name: repr(fingerprint(solved.env[name], solved.inference.scheme(name).body, chain))
        for name in solved.program.binding_names()
    }
    print(json.dumps({
        "digests": solved.scc_digests,
        "fingerprints": prints,
        "iterations": session.stats.iterations,
        "scc_misses": session.stats.scc_misses,
        "store_hits": session.stats.store_hits,
    }))
    """
)


class TestCrossProcess:
    def test_two_processes_share_scc_results(self, tmp_path):
        """The acceptance criterion: a second, independent process decodes
        every SCC from the shared store — zero fixpoint iterations,
        bit-identical values — even under different hash seeds."""
        store = str(tmp_path / "store")

        def run(seed: str) -> dict:
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = (
                "src" + os.pathsep + env.get("PYTHONPATH", "")
            ).rstrip(os.pathsep)
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD, store],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            return json.loads(proc.stdout)

        first = run("0")
        second = run("12345")
        assert first["scc_misses"] == 3 and first["iterations"] > 0
        assert second["scc_misses"] == 0
        assert second["iterations"] == 0
        assert second["store_hits"] == 3
        assert second["digests"] == first["digests"]
        assert second["fingerprints"] == first["fingerprints"]


class TestTornWritesAndReaping:
    """Crash-safety of the write path: torn writes recover as misses, and
    the orphaned temp files they strand are swept at store open."""

    def _warm_store(self, tmp_path) -> AnalysisStore:
        store = AnalysisStore(tmp_path / "store")
        AnalysisSession(paper_partition_sort(), store=store).solve(None)
        return store

    def test_torn_write_leaves_orphan_and_truncated_entry(self, tmp_path):
        store = AnalysisStore(tmp_path / "store")
        with faults.inject(FaultPlan(torn_write_at=1)):
            session = AnalysisSession(paper_partition_sort(), store=store)
            session.solve(None)
        assert len(store.tmp_files()) == 1
        # the torn final entry reads as a miss, never a misinterpretation
        torn_digests = [
            digest for digest in store.digests() if store.read(digest) is None
        ]
        assert len(torn_digests) == 1

    def test_torn_write_recovery_resolves_to_identical_answers(self, tmp_path):
        store = AnalysisStore(tmp_path / "store")
        with faults.inject(FaultPlan(torn_write_every=1)):
            damaged = AnalysisSession(paper_partition_sort(), store=store)
            solved_damaged = damaged.solve(None)
        # every write tore: next session re-solves everything...
        session = AnalysisSession(paper_partition_sort(), store=store)
        solved = session.solve(None)
        assert session.stats.store_hits == 0
        assert session.stats.iterations > 0
        # ...to bit-identical lattice values
        baseline = AnalysisSession(paper_partition_sort())
        assert _fingerprints(session, solved) == _fingerprints(
            baseline, baseline.solve(None)
        )
        assert _fingerprints(damaged, solved_damaged) == _fingerprints(
            session, solved
        )

    def test_fresh_tmp_files_survive_default_reap(self, tmp_path):
        store = self._warm_store(tmp_path)
        with faults.inject(FaultPlan(torn_write_at=1)):
            store.write("ab" * 32, {"x": 1})
        assert len(store.tmp_files()) == 1
        # a just-created temp file could belong to a live writer: the
        # age-gated open-time sweep must leave it alone
        reopened = AnalysisStore(store.root)
        assert len(reopened.tmp_files()) == 1
        assert reopened.counters()["store_tmp_reaped"] == 0

    def test_stale_tmp_files_are_reaped_at_open(self, tmp_path):
        store = self._warm_store(tmp_path)
        with faults.inject(FaultPlan(torn_write_every=1)):
            store.write("ab" * 32, {"x": 1})
            store.write("cd" * 32, {"x": 2})
        orphans = store.tmp_files()
        assert len(orphans) == 2
        stale = time.time() - DEFAULT_REAP_AGE_S - 60
        for tmp in orphans:
            os.utime(tmp, (stale, stale))
        reopened = AnalysisStore(store.root)
        assert reopened.tmp_files() == []
        assert reopened.counters()["store_tmp_reaped"] == 2

    def test_forced_reap_emits_schema_valid_event(self, tmp_path):
        store = self._warm_store(tmp_path)
        with faults.inject(FaultPlan(torn_write_at=1)):
            store.write("ab" * 32, {"x": 1})
        ring = RingBufferSink(capacity=None)
        with activate(Tracer(sinks=[ring])):
            assert store.reap_tmp(max_age_s=0.0) == 1
        assert store.tmp_files() == []
        events = [e for e in ring.events if e["type"] == "store_reap"]
        assert events and events[0]["count"] == 1
        validate_trace(ring.events)

    def test_reap_can_be_disabled(self, tmp_path):
        store = self._warm_store(tmp_path)
        with faults.inject(FaultPlan(torn_write_at=1)):
            store.write("ab" * 32, {"x": 1})
        stale = time.time() - DEFAULT_REAP_AGE_S - 60
        for tmp in store.tmp_files():
            os.utime(tmp, (stale, stale))
        untouched = AnalysisStore(store.root, reap=False)
        assert len(untouched.tmp_files()) == 1

    def test_injected_store_write_fault_is_silent(self, tmp_path):
        store = AnalysisStore(tmp_path / "store")
        with faults.inject(
            FaultPlan(stage_faults=(StageFault(stage="store_write", at=1),))
        ) as injector:
            assert store.write("ab" * 32, {"x": 1}) is False
            assert store.write("cd" * 32, {"x": 2}) is True
        assert injector.fired == ["store_write@1"]
        assert store.read("cd" * 32) == {"x": 2}
        assert store.read("ab" * 32) is None
