"""A prelude of nml functions used throughout tests, examples and benches.

Includes every function the paper mentions (``APPEND``, ``SPLIT``, ``PS``,
``REV``, ``map``, ``pair``, ``create_list``) plus a standard-library's worth
of list functions that exercise the analysis from different angles.

Each entry is source text for one definition; :func:`prelude_program` builds
one program containing any subset, and :func:`paper_partition_sort` returns
exactly the Appendix A program.
"""

from __future__ import annotations

from repro.lang.ast import Program
from repro.lang.parser import parse_program

#: name -> nml definition source
PRELUDE_DEFS: dict[str, str] = {
    # -- functions from the paper ---------------------------------------
    "append": (
        "append x y = if (null x) then y"
        " else cons (car x) (append (cdr x) y)"
    ),
    "split": (
        "split p x l h ="
        " if (null x) then cons l (cons h nil)"
        " else if (car x) < p"
        " then split p (cdr x) (cons (car x) l) h"
        " else split p (cdr x) l (cons (car x) h)"
    ),
    "ps": (
        "ps x = if (null x) then nil"
        " else append (ps (car (split (car x) (cdr x) nil nil)))"
        " (cons (car x) (ps (car (cdr (split (car x) (cdr x) nil nil)))))"
    ),
    "rev": (
        "rev l = if (null l) then nil"
        " else append (rev (cdr l)) (cons (car l) nil)"
    ),
    "pair": (
        "pair x = if (null x) then 0"
        " else if (null (cdr x)) then 0 else car x + car (cdr x)"
    ),
    "map": (
        "map f l = if (null l) then nil"
        " else cons (f (car l)) (map f (cdr l))"
    ),
    "create_list": (
        "create_list i = if i == 0 then nil else cons i (create_list (i - 1))"
    ),
    # -- standard list functions -----------------------------------------
    "length": "length l = if (null l) then 0 else 1 + length (cdr l)",
    "sum": "sum l = if (null l) then 0 else car l + sum (cdr l)",
    "last": (
        "last l = if (null (cdr l)) then car l else last (cdr l)"
    ),
    "member": (
        "member n l = if (null l) then false"
        " else if car l == n then true else member n (cdr l)"
    ),
    "take": (
        "take n l = if n == 0 then nil"
        " else if (null l) then nil"
        " else cons (car l) (take (n - 1) (cdr l))"
    ),
    "drop": (
        "drop n l = if n == 0 then l"
        " else if (null l) then nil else drop (n - 1) (cdr l)"
    ),
    "filter": (
        "filter p l = if (null l) then nil"
        " else if p (car l) then cons (car l) (filter p (cdr l))"
        " else filter p (cdr l)"
    ),
    "foldr": (
        "foldr f z l = if (null l) then z"
        " else f (car l) (foldr f z (cdr l))"
    ),
    "foldl": (
        "foldl f z l = if (null l) then z"
        " else foldl f (f z (car l)) (cdr l)"
    ),
    "rev_acc": (
        "rev_acc l acc = if (null l) then acc"
        " else rev_acc (cdr l) (cons (car l) acc)"
    ),
    "concat": (
        "concat ls = if (null ls) then nil"
        " else append (car ls) (concat (cdr ls))"
    ),
    "replicate": (
        "replicate n x = if n == 0 then nil else cons x (replicate (n - 1) x)"
    ),
    "iota": "iota n = if n == 0 then nil else cons n (iota (n - 1))",
    "copy": (
        "copy l = if (null l) then nil else cons (car l) (copy (cdr l))"
    ),
    "id_fn": "id_fn x = x",
    "const_fn": "const_fn x y = x",
    "compose": "compose f g x = f (g x)",
    "twice": "twice f x = f (f x)",
    "insert": (
        "insert n l = if (null l) then cons n nil"
        " else if n <= car l then cons n l"
        " else cons (car l) (insert n (cdr l))"
    ),
    "isort": (
        "isort l = if (null l) then nil"
        " else insert (car l) (isort (cdr l))"
    ),
    "interleave": (
        "interleave x y = if (null x) then y"
        " else cons (car x) (interleave y (cdr x))"
    ),
    "nth": (
        "nth n l = if n == 0 then car l else nth (n - 1) (cdr l)"
    ),
    "snoc": "snoc l x = append l (cons x nil)",
    "heads": (
        "heads ls = if (null ls) then nil"
        " else cons (car (car ls)) (heads (cdr ls))"
    ),
    "tails_tops": (
        "tails_tops ls = if (null ls) then nil"
        " else cons (cdr (car ls)) (tails_tops (cdr ls))"
    ),
    # -- tuple functions (the §7 extension) --------------------------------
    "swap": "swap p = (snd p, fst p)",
    "dup": "dup x = (x, x)",
    "zip": (
        "zip x y = if (null x) then nil"
        " else if (null y) then nil"
        " else cons (car x, car y) (zip (cdr x) (cdr y))"
    ),
    "unzip": (
        "unzip l = if (null l) then (nil, nil)"
        " else (cons (fst (car l)) (fst (unzip (cdr l))),"
        " cons (snd (car l)) (snd (unzip (cdr l))))"
    ),
    "split_pair": (
        "split_pair p x l h ="
        " if (null x) then (l, h)"
        " else if (car x) < p"
        " then split_pair p (cdr x) (cons (car x) l) h"
        " else split_pair p (cdr x) l (cons (car x) h)"
    ),
    "ps_pair": (
        "ps_pair x = if (null x) then nil"
        " else append (ps_pair (fst (split_pair (car x) (cdr x) nil nil)))"
        " (cons (car x) (ps_pair (snd (split_pair (car x) (cdr x) nil nil))))"
    ),
    "pair_up": (
        "pair_up l = if (null l) then nil"
        " else if (null (cdr l)) then nil"
        " else cons (car l, car (cdr l)) (pair_up (cdr (cdr l)))"
    ),
    "firsts": (
        "firsts l = if (null l) then nil"
        " else cons (fst (car l)) (firsts (cdr l))"
    ),
    # -- mergesort (a reuse-hostile sort, contrast with ps) ----------------
    "merge": (
        "merge x y = if (null x) then y"
        " else if (null y) then x"
        " else if car x <= car y"
        " then cons (car x) (merge (cdr x) y)"
        " else cons (car y) (merge x (cdr y))"
    ),
    "halve": (
        "halve l = if (null l) then (nil, nil)"
        " else if (null (cdr l)) then (l, nil)"
        " else (cons (car l) (fst (halve (cdr (cdr l)))),"
        " cons (car (cdr l)) (snd (halve (cdr (cdr l)))))"
    ),
    "msort": (
        "msort l = if (null l) then nil"
        " else if (null (cdr l)) then l"
        " else merge (msort (fst (halve l))) (msort (snd (halve l)))"
    ),
}

#: Functions each prelude entry calls (so subsets can be closed over deps).
PRELUDE_DEPS: dict[str, tuple[str, ...]] = {
    "ps": ("append", "split"),
    "ps_pair": ("append", "split_pair"),
    "rev": ("append",),
    "concat": ("append",),
    "isort": ("insert",),
    "msort": ("merge", "halve"),
    "snoc": ("append",),
}


def _closure(names: list[str]) -> list[str]:
    """``names`` plus their transitive prelude dependencies, in a stable
    order with dependencies first."""
    ordered: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        for dep in PRELUDE_DEPS.get(name, ()):
            visit(dep)
        ordered.append(name)

    for name in names:
        visit(name)
    return ordered


def prelude_source(names: list[str], result: str = "") -> str:
    """Source text for a program defining ``names`` (dependency-closed),
    with ``result`` as the program body."""
    unknown = [name for name in names if name not in PRELUDE_DEFS]
    if unknown:
        raise KeyError(f"not in prelude: {unknown}")
    lines = [PRELUDE_DEFS[name] + ";" for name in _closure(names)]
    if result:
        lines.append(result)
    return "\n".join(lines) + "\n"


def prelude_program(names: list[str], result: str = "") -> Program:
    """Parse a program containing the given prelude definitions."""
    return parse_program(prelude_source(names, result))


def paper_partition_sort(result: str = "ps [5, 2, 7, 1, 3, 4]") -> Program:
    """The Appendix A partition sort program, with the paper's input list."""
    return prelude_program(["append", "split", "ps"], result)


def paper_map_pair(result: str = "map pair [[1, 2], [3, 4], [5, 6]]") -> Program:
    """The Section 1 motivating example."""
    return prelude_program(["pair", "map"], result)
