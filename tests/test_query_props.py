"""Property tests for the query engine: over *generated* well-typed
programs, answers served by a shared, caching :class:`AnalysisSession` are
bit-identical to a fresh single-use :class:`EscapeAnalysis` per question —
repeated, interleaved, or served under ``--robust`` budgets.  The cache is
an invisible optimization, never an approximation.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.escape.analyzer import EscapeAnalysis
from repro.query import AnalysisSession
from repro.robust.engine import HardenedAnalysis

from .strategies import analysis_budget, list_function_program


@settings(max_examples=40, deadline=None)
@given(case=list_function_program())
def test_session_answers_match_fresh_analyses(case):
    program, _ = case
    session = AnalysisSession(program)
    cached = EscapeAnalysis(program, session=session)

    # Interleave global and local questions, repeating each: answers must
    # equal a fresh single-use analysis every time, warm or cold.
    for _ in range(2):
        fresh_global = EscapeAnalysis(program).global_all("f")
        session_global = cached.global_all("f")
        assert len(session_global) == len(fresh_global)
        for fresh, warm in zip(fresh_global, session_global):
            assert fresh.result == warm.result
            assert fresh.escaping_spines == warm.escaping_spines
            assert fresh.non_escaping_spines == warm.non_escaping_spines

        fresh_local = EscapeAnalysis(program).local_test(program.body)
        session_local = cached.local_test(program.body)
        assert [r.result for r in session_local] == [r.result for r in fresh_local]

    # Every question after the first solve was served from cache; each
    # global_all/local_test call is one query scope.
    assert session.stats.solve_misses <= 2  # one global, one local variant
    assert session.stats.queries == 4


@settings(max_examples=40, deadline=None)
@given(case=list_function_program(), budget=analysis_budget())
def test_hardened_session_is_exact_or_dominates(case, budget):
    program, _ = case
    exact = EscapeAnalysis(program).global_all("f")
    engine = HardenedAnalysis(program, budget=budget)

    # Ask twice through the same engine: its session caches across queries,
    # and budgets charge only the misses — both passes stay sound, and any
    # *exact* answer is bit-identical to the fresh single-use analysis.
    for _ in range(2):
        robust = engine.global_all("f")
        assert len(robust) == len(exact)
        for e, r in zip(exact, robust):
            if r.exact:
                assert e.result == r.result.result
            else:
                assert e.result.leq(r.result.result)
