"""Parser unit tests: every syntactic form, sugar, precedence, errors."""

import pytest

from repro.lang.ast import (
    App,
    BoolLit,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Var,
    uncurry_app,
    uncurry_lambda,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expr, parse_program


class TestAtoms:
    def test_int(self):
        assert parse_expr("42") == IntLit(value=42)

    def test_true_false(self):
        assert parse_expr("true") == BoolLit(value=True)
        assert parse_expr("false") == BoolLit(value=False)

    def test_nil(self):
        assert parse_expr("nil") == NilLit()

    def test_variable(self):
        assert parse_expr("x") == Var(name="x")

    def test_primitive_name_resolves_to_prim(self):
        assert parse_expr("cons") == Prim(name="cons")

    def test_parenthesized(self):
        assert parse_expr("(7)") == IntLit(value=7)


class TestApplication:
    def test_simple_application(self):
        expr = parse_expr("f x")
        assert expr == App(fn=Var(name="f"), arg=Var(name="x"))

    def test_application_is_left_associative(self):
        head, args = uncurry_app(parse_expr("f x y z"))
        assert head == Var(name="f")
        assert args == [Var(name="x"), Var(name="y"), Var(name="z")]

    def test_parens_override_application(self):
        head, args = uncurry_app(parse_expr("f (g x)"))
        assert head == Var(name="f")
        assert args == [App(fn=Var(name="g"), arg=Var(name="x"))]

    def test_application_binds_tighter_than_plus(self):
        head, args = uncurry_app(parse_expr("f x + g y"))
        assert isinstance(head, Prim) and head.name == "+"


class TestOperators:
    def test_addition(self):
        head, args = uncurry_app(parse_expr("1 + 2"))
        assert isinstance(head, Prim) and head.name == "+"
        assert args == [IntLit(value=1), IntLit(value=2)]

    def test_left_associative_subtraction(self):
        # (10 - 3) - 2
        head, args = uncurry_app(parse_expr("10 - 3 - 2"))
        assert isinstance(head, Prim) and head.name == "-"
        inner_head, inner_args = uncurry_app(args[0])
        assert isinstance(inner_head, Prim) and inner_head.name == "-"
        assert inner_args == [IntLit(value=10), IntLit(value=3)]

    def test_multiplication_binds_tighter_than_addition(self):
        head, args = uncurry_app(parse_expr("1 + 2 * 3"))
        assert isinstance(head, Prim) and head.name == "+"
        mul_head, _ = uncurry_app(args[1])
        assert isinstance(mul_head, Prim) and mul_head.name == "*"

    def test_comparison_is_loosest(self):
        head, args = uncurry_app(parse_expr("1 + 2 == 3"))
        assert isinstance(head, Prim) and head.name == "=="

    @pytest.mark.parametrize("op", ["==", "<>", "<", "<=", ">", ">="])
    def test_all_comparisons(self, op):
        head, _ = uncurry_app(parse_expr(f"1 {op} 2"))
        assert isinstance(head, Prim) and head.name == op

    def test_unary_minus_on_literal_folds(self):
        assert parse_expr("-5") == IntLit(value=-5)

    def test_unary_minus_on_expression_desugars(self):
        assert parse_expr("-(x)") == parse_expr("0 - x")

    def test_cons_operator(self):
        assert parse_expr("1 :: nil") == parse_expr("cons 1 nil")

    def test_cons_is_right_associative(self):
        assert parse_expr("1 :: 2 :: nil") == parse_expr("cons 1 (cons 2 nil)")

    def test_cons_looser_than_plus(self):
        assert parse_expr("1 + 2 :: nil") == parse_expr("cons (1 + 2) nil")


class TestListLiterals:
    def test_empty_list(self):
        assert parse_expr("[]") == NilLit()

    def test_singleton(self):
        assert parse_expr("[1]") == parse_expr("cons 1 nil")

    def test_list_desugars_to_cons_chain(self):
        assert parse_expr("[1, 2, 3]") == parse_expr("cons 1 (cons 2 (cons 3 nil))")

    def test_nested_list(self):
        assert parse_expr("[[1], [2]]") == parse_expr("cons (cons 1 nil) (cons (cons 2 nil) nil)")

    def test_expressions_inside_literal(self):
        assert parse_expr("[1 + 2]") == parse_expr("cons (1 + 2) nil")


class TestLambdaAndIf:
    def test_paper_style_lambda(self):
        expr = parse_expr("lambda(x). x")
        assert expr == Lambda(param="x", body=Var(name="x"))

    def test_multi_param_lambda_curries(self):
        params, body = uncurry_lambda(parse_expr("lambda x y. x"))
        assert params == ["x", "y"]
        assert body == Var(name="x")

    def test_lambda_body_extends_right(self):
        params, body = uncurry_lambda(parse_expr("lambda x. x + 1"))
        assert params == ["x"]
        head, _ = uncurry_app(body)
        assert isinstance(head, Prim) and head.name == "+"

    def test_if(self):
        expr = parse_expr("if true then 1 else 2")
        assert expr == If(cond=BoolLit(value=True), then=IntLit(value=1), otherwise=IntLit(value=2))

    def test_nested_if_in_else(self):
        expr = parse_expr("if a then 1 else if b then 2 else 3")
        assert isinstance(expr, If)
        assert isinstance(expr.otherwise, If)

    def test_lambda_missing_params_raises(self):
        with pytest.raises(ParseError):
            parse_expr("lambda . x")


class TestLetrec:
    def test_letrec_expression(self):
        expr = parse_expr("letrec f x = x in f 1")
        assert isinstance(expr, Letrec)
        assert expr.binding_names() == ("f",)
        assert isinstance(expr.find("f").expr, Lambda)

    def test_let_is_letrec(self):
        assert parse_expr("let x = 1 in x") == parse_expr("letrec x = 1 in x")

    def test_multiple_bindings_semicolon(self):
        expr = parse_expr("letrec f x = x; g y = y in f (g 1)")
        assert expr.binding_names() == ("f", "g")

    def test_multiple_bindings_and_keyword(self):
        expr = parse_expr("letrec f x = x and g y = y in 0")
        assert expr.binding_names() == ("f", "g")

    def test_binding_shadows_primitive(self):
        expr = parse_expr("letrec car x = x in car 1")
        # car is a user binding here, not the primitive
        body_head, _ = uncurry_app(expr.body)
        assert body_head == Var(name="car")


class TestPrograms:
    def test_script_form(self):
        program = parse_program("id x = x;\nid 3\n")
        assert program.binding_names() == ("id",)
        assert program.body == App(fn=Var(name="id"), arg=IntLit(value=3))

    def test_script_without_result_defaults_to_nil(self):
        program = parse_program("id x = x;")
        assert program.body == NilLit()

    def test_script_multiple_definitions(self):
        program = parse_program("f x = x; g y = f y; g 1")
        assert program.binding_names() == ("f", "g")

    def test_multi_parameter_definition_curries(self):
        program = parse_program("k x y = x;")
        params, _ = uncurry_lambda(program.binding("k").expr)
        assert params == ["x", "y"]

    def test_bare_expression_program(self):
        program = parse_program("1 + 2")
        assert program.binding_names() == ()

    def test_letrec_program_form(self):
        program = parse_program("letrec f x = x in f 9")
        assert program.binding_names() == ("f",)

    def test_definition_lookalike_comparison_is_expression(self):
        # `x == 1` must not be taken as a definition of x.
        program = parse_program("x == 1")
        head, _ = uncurry_app(program.body)
        assert isinstance(head, Prim) and head.name == "=="


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "if true then 1",  # missing else
            "f (x",  # unclosed paren
            "[1, 2",  # unclosed bracket
            "letrec in 1",  # no bindings
            "lambda x",  # missing dot/body
            "1 +",  # dangling operator
            "",  # empty expression
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse_expr(bad)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("1 2 3 )")


class TestPaperPrograms:
    def test_partition_sort_parses(self, partition_sort):
        assert partition_sort.binding_names() == ("append", "split", "ps")

    def test_map_pair_parses(self, map_pair):
        assert map_pair.binding_names() == ("pair", "map")
