"""Textual listings of lowered IR blocks (``%i = op ...`` per line)."""

from __future__ import annotations

from repro.ir.nodes import Block, Instr


def _operand_list(ins: Instr) -> str:
    return ", ".join(f"%{i}" for i in ins.operands)


def _describe(ins: Instr) -> str:
    if ins.op == "const":
        return f"const {getattr(ins.node, 'value', 'nil')}"
    if ins.op == "prim":
        return f"prim {ins.node.name}"
    if ins.op == "load":
        return f"load {ins.name}"
    if ins.op == "apply":
        return f"apply {_operand_list(ins)}"
    if ins.op == "branch":
        return f"branch {_operand_list(ins)}"
    if ins.op == "close":
        free = ", ".join(ins.names)
        return f"close λ{ins.param} [{free}] -> {ins.blocks[0].label}"
    if ins.op == "enter":
        return f"enter letrec({', '.join(ins.names)}) -> {ins.blocks[-1].label}"
    return ins.op


def pretty_block(block: Block, indent: str = "") -> str:
    """One block (and, indented, every nested block) as text."""
    lines = [f"{indent}block {block.label}:"]
    for i, ins in enumerate(block.instrs):
        marker = " ; result" if i == block.result else ""
        lines.append(f"{indent}  %{i} = {_describe(ins)}{marker}")
    for ins in block.instrs:
        for nested in ins.blocks:
            lines.append(pretty_block(nested, indent + "  "))
    return "\n".join(lines)


def pretty_blocks(blocks: dict[str, Block]) -> str:
    return "\n".join(pretty_block(b) for b in blocks.values()) + "\n"
