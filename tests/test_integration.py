"""End-to-end integration stories exercising the whole public API."""

import repro
from repro.bench.figures import spine_census, spine_figure
from repro.bench.workloads import literal, random_int_list
from repro.escape.exact import observe_escape
from repro.opt.pipeline import paper_ps_double_prime
from repro.semantics.interp import Interpreter, run_program


class TestPublicApi:
    def test_analyze_from_source(self):
        analysis = repro.analyze(
            "append x y = if (null x) then y"
            " else cons (car x) (append (cdr x) y);"
        )
        result = analysis.global_test("append", 1)
        assert str(result.result) == "<1,0>"

    def test_analyze_from_program(self):
        analysis = repro.analyze(repro.paper_partition_sort())
        assert str(analysis.global_test("ps", 1).result) == "<1,0>"

    def test_version(self):
        assert repro.__version__

    def test_run_program_helper(self):
        result, metrics = repro.run_program(repro.paper_partition_sort())
        assert result == [1, 2, 3, 4, 5, 7]
        assert metrics.heap_allocs > 0


class TestFigure1:
    def test_paper_list_spines(self):
        figure = spine_figure([[1, 2], [3, 4], [5, 6]])
        assert "2 spine(s), 9 cell(s)" in figure
        assert "top spine 1 (= bottom spine 2)" in figure

    def test_census(self):
        interp = Interpreter()
        value = interp.from_python([[1, 2], [3, 4], [5, 6]])
        assert spine_census(interp, value) == {1: 3, 2: 6}

    def test_nil_figure(self):
        assert "no spine" in spine_figure([])


class TestFullStory:
    """Parse -> analyze -> observe -> optimize -> run, on one program."""

    def test_analysis_drives_a_sound_optimization(self):
        values = random_int_list(30, seed=42)
        source = f"ps {literal(values)}"
        program = repro.prelude_program(["ps"], source)

        # 1. the analysis proves the top spine reusable
        analysis = repro.analyze(program)
        assert analysis.global_test("append", 1).non_escaping_spines == 1

        # 2. dynamic observation confirms it on this input
        observed = observe_escape(program, "ps", [values], 1)
        assert not observed.escaped

        # 3. the optimization applies and preserves the result
        optimized = paper_ps_double_prime(source)
        base_result, base_metrics = run_program(program)
        opt_result, opt_metrics = run_program(optimized.program)
        assert opt_result == base_result == sorted(values)

        # 4. and the storage behaviour improves as the paper promises
        assert opt_metrics.reused > 0
        assert opt_metrics.heap_allocs < base_metrics.heap_allocs

    def test_gc_pressure_drops_with_block_allocation(self):
        from repro.opt.pipeline import paper_block_allocated

        n = 60
        base = repro.prelude_program(["ps", "create_list"], f"ps (create_list {n})")
        base_interp = Interpreter(auto_gc=True, gc_threshold=40)
        base_interp.run(base)

        optimized = paper_block_allocated(n)
        opt_interp = Interpreter(auto_gc=True, gc_threshold=40)
        opt_interp.run(optimized.program)

        assert opt_interp.metrics.block_reclaimed == n
        assert opt_interp.metrics.heap_allocs < base_interp.metrics.heap_allocs

    def test_report_end_to_end(self):
        report = repro.analysis_report(repro.paper_map_pair())
        assert "G(map, 2) = <1,0>" in report
