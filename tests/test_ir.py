"""The flat IR and the worklist engine: lowering shape (one instruction
per AST node, explicit def–use edges, spans preserved), dependency sets,
pretty listings, engine selection, the alias partition, and the worklist
evaluator's incremental execution and parity with the legacy oracle."""

import pytest

from repro.escape.abstract import AbstractEvaluator, fingerprint
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.domain import BOTTOM, EscapeValue
from repro.escape.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    default_engine,
    make_evaluator,
    use_engine,
    validate_engine,
)
from repro.escape.lattice import BeChain, Escapement
from repro.escape.worklist import AliasPartition, WorklistEvaluator
from repro.ir import OPS, lower_expr, lower_program, pretty_block, pretty_blocks
from repro.lang.ast import Lambda, Letrec
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_expr, parse_program
from repro.lang.prelude import paper_partition_sort, prelude_program
from repro.obs import RingBufferSink, Tracer, activate
from repro.query import AnalysisSession, scc_digest
from repro.types.infer import infer_expr
from repro.types.types import BOOL, INT, TList, TypeScheme


def typed(source: str, **env_types):
    expr = parse_expr(source)
    env = {name: TypeScheme.mono(ty) for name, ty in env_types.items()}
    infer_expr(expr, env)
    return expr


E11 = EscapeValue(Escapement(1, 1))


class TestLowering:
    def test_one_instruction_per_node(self):
        block = lower_expr(parse_expr("car x"))
        assert [ins.op for ins in block.instrs] == ["prim", "load", "apply"]
        assert block.result == 2
        assert all(ins.op in OPS for ins in block.instrs)

    def test_def_use_edges(self):
        block = lower_expr(parse_expr("car x"))
        apply = block.instrs[2]
        assert apply.operands == (0, 1)
        # forward edges derived by finish()
        assert block.users[0] == (2,)
        assert block.users[1] == (2,)
        assert block.users[2] == ()

    def test_spans_preserved(self):
        block = lower_expr(parse_expr("car x"))
        for ins in block.instrs:
            assert ins.span is ins.node.span

    def test_branch_arms_are_flat(self):
        block = lower_expr(parse_expr("if b then x else y"))
        assert [ins.op for ins in block.instrs] == ["load", "load", "load", "branch"]
        branch = block.instrs[3]
        assert branch.operands == (0, 1, 2)
        assert branch.blocks == ()  # no nesting: both arms inline

    def test_branch_deps_union_all_three(self):
        block = lower_expr(parse_expr("if b then x else y"))
        assert block.free_names == frozenset({"b", "x", "y"})

    def test_lambda_nests_body_and_subtracts_param(self):
        block = lower_expr(parse_expr("lambda y. cons x y"), label="f")
        (close,) = block.instrs
        assert close.op == "close"
        assert close.param == "y"
        assert close.names == ("x",)  # y bound by the lambda
        assert block.free_names == frozenset({"x"})
        body = close.blocks[0]
        assert body.label == "f.λy"
        assert body.free_names == frozenset({"x", "y"})

    def test_letrec_enters_nested_blocks(self):
        expr = parse_expr("letrec f = lambda l. f l in f x")
        block = lower_expr(expr, label="top")
        (enter,) = block.instrs
        assert enter.op == "enter"
        assert enter.names == ("f",)
        assert len(enter.blocks) == 2  # one per binding, then the body
        assert enter.blocks[0].label == "top.f"
        assert enter.blocks[1].label == "top.in"
        # f is bound by the letrec; only x leaks out
        assert block.free_names == frozenset({"x"})

    def test_size_counts_nested_blocks(self):
        block = lower_expr(parse_expr("lambda y. cons x y"))
        assert len(block) == 1
        assert block.size() == 1 + block.instrs[0].blocks[0].size()

    def test_lower_program_one_block_per_binding(self):
        blocks = lower_program(paper_partition_sort())
        assert set(blocks) == {"append", "split", "ps"}
        assert all(b.label == name for name, b in blocks.items())

    def test_lowering_emits_ir_lower_events(self):
        ring = RingBufferSink()
        with activate(Tracer(sinks=[ring])):
            blocks = lower_program(prelude_program(["append"]))
        events = [e for e in ring.events if e["type"] == "ir_lower"]
        assert [e["name"] for e in events] == ["append"]
        assert events[0]["instructions"] == blocks["append"].size()

    def test_blocks_compare_by_identity(self):
        a = lower_expr(parse_expr("car x"))
        b = lower_expr(parse_expr("car x"))
        assert a != b  # cache-key semantics
        assert len({id(a), id(b)}) == 2


class TestPretty:
    def test_listing_shape(self):
        text = pretty_block(lower_expr(parse_expr("car x"), label="probe"))
        assert "block probe:" in text
        assert "%0 = prim car" in text
        assert "%1 = load x" in text
        assert "%2 = apply %0, %1 ; result" in text

    def test_nested_blocks_are_indented(self):
        text = pretty_block(lower_expr(parse_expr("lambda y. x"), label="f"))
        assert "close λy [x] -> f.λy" in text
        assert "  block f.λy:" in text

    def test_pretty_blocks_joins_program(self):
        text = pretty_blocks(lower_program(paper_partition_sort()))
        for name in ("append", "split", "ps"):
            assert f"block {name}:" in text


class TestAliasPartition:
    def test_singletons_by_default(self):
        p = AliasPartition()
        assert not p.may_share("a", "b")
        assert p.class_of("a") == frozenset({"a"})

    def test_union_is_transitive(self):
        p = AliasPartition()
        p.union("a", "b")
        p.union("b", "c")
        assert p.may_share("a", "c")
        assert p.class_of("a") == frozenset({"a", "b", "c"})

    def test_empty_union_is_noop(self):
        p = AliasPartition()
        p.union()
        assert p.class_of("a") == frozenset({"a"})

    def test_name_classes_filters_name_tokens(self):
        p = AliasPartition()
        p.union(("name", "x"), ("v", "blk", 0), ("name", "y"))
        p.union(("name", "z"), ("v", "blk", 1))
        classes = p.name_classes()
        assert classes["x"] == frozenset({"x", "y"})
        assert classes["y"] == frozenset({"x", "y"})
        assert classes["z"] == frozenset({"z"})


class TestEngineSelection:
    def test_validate_engine(self):
        for engine in ENGINES:
            assert validate_engine(engine) == engine
        with pytest.raises(AnalysisError, match="unknown analysis engine"):
            validate_engine("quantum")

    def test_worklist_is_the_default(self):
        assert DEFAULT_ENGINE == "worklist"
        assert default_engine() == "worklist"

    def test_use_engine_scopes_and_restores(self):
        assert default_engine() == "worklist"
        with use_engine("legacy"):
            assert default_engine() == "legacy"
            session = AnalysisSession(paper_partition_sort())
            assert session.engine == "legacy"
        assert default_engine() == "worklist"

    def test_use_engine_rejects_unknown(self):
        with pytest.raises(AnalysisError):
            with use_engine("quantum"):
                pass  # pragma: no cover
        assert default_engine() == "worklist"

    def test_make_evaluator_dispatch(self):
        chain = BeChain(2)
        worklist = make_evaluator("worklist", chain)
        legacy = make_evaluator("legacy", chain)
        assert isinstance(worklist, WorklistEvaluator)
        assert isinstance(legacy, AbstractEvaluator)
        assert not isinstance(legacy, WorklistEvaluator)

    def test_session_validates_engine(self):
        with pytest.raises(AnalysisError):
            AnalysisSession(paper_partition_sort(), engine="quantum")

    def test_analysis_rejects_conflicting_session_engine(self):
        program = paper_partition_sort()
        session = AnalysisSession(program, engine="legacy")
        with pytest.raises(AnalysisError, match="conflicts with the session"):
            EscapeAnalysis(program, session=session, engine="worklist")
        # matching request is fine
        analysis = EscapeAnalysis(program, session=session, engine="legacy")
        assert analysis.engine == "legacy"

    def test_engine_is_digest_key_material(self):
        kwargs = dict(typed_fingerprint="tf", d=2, max_iterations=None, dependencies={})
        assert scc_digest(engine="legacy", **kwargs) != scc_digest(
            engine="worklist", **kwargs
        )
        # None means "the process default"
        assert scc_digest(engine=None, **kwargs) == scc_digest(
            engine=default_engine(), **kwargs
        )


class TestWorklistEvaluator:
    def ev(self, d=2, **kwargs):
        return WorklistEvaluator(BeChain(d), **kwargs)

    def test_expression_cases_match_legacy(self):
        cases = [
            (typed("1"), {}),
            (typed("nil"), {}),
            (typed("car x", x=TList(INT)), {"x": E11}),
            (typed("if b then x else nil", b=BOOL, x=TList(INT)), {"b": BOTTOM, "x": E11}),
            (typed("lambda y. x", x=TList(INT)), {"x": E11}),
        ]
        for expr, env in cases:
            legacy = AbstractEvaluator(BeChain(2)).eval(expr, dict(env))
            worklist = self.ev().eval(expr, dict(env))
            assert worklist.be == legacy.be

    def test_unbound_variable_error_matches_legacy(self):
        expr = parse_expr("x")
        with pytest.raises(AnalysisError) as legacy_err:
            AbstractEvaluator(BeChain(2)).eval(expr, {})
        with pytest.raises(AnalysisError) as worklist_err:
            self.ev().eval(expr, {})
        assert str(worklist_err.value) == str(legacy_err.value)

    def test_incremental_reexecution_skips_unchanged(self):
        e = self.ev()
        expr = typed("car x", x=TList(INT))
        e.eval(expr, {"x": E11})
        steps = e.steps
        # same value objects: nothing changed, nothing re-executes
        e.eval(expr, {"x": E11})
        assert e.steps == steps

    def test_changed_input_reexecutes_dependents_only(self):
        e = self.ev()
        expr = typed("if b then x else y", b=BOOL, x=TList(INT), y=TList(INT))
        env = {"b": BOTTOM, "x": E11, "y": BOTTOM}
        e.eval(expr, env)
        steps = e.steps
        # a new object for y: its load and the branch re-run, b and x do not
        result = e.eval(expr, {**env, "y": EscapeValue(Escapement(1, 0))})
        assert e.steps == steps + 2
        assert result.be == Escapement(1, 1)

    def test_state_invalidated_after_error(self):
        e = self.ev()
        expr = typed("car x", x=TList(INT))
        with pytest.raises(AnalysisError):
            e.eval(expr, {})  # x missing: partial execution
        assert e.eval(expr, {"x": E11}).be == Escapement(1, 0)

    def test_fixpoint_fingerprints_match_legacy(self):
        program = paper_partition_sort()
        legacy = EscapeAnalysis(program, engine="legacy")
        worklist = EscapeAnalysis(paper_partition_sort(), engine="worklist")
        solved_l = legacy.solve(None)
        solved_w = worklist.solve(None)
        chain = solved_l.evaluator.chain
        for name in ("append", "split", "ps"):
            ty = legacy.scheme(name).body
            fp_l = fingerprint(solved_l.env[name], ty, chain)
            fp_w = fingerprint(solved_w.env[name], ty, solved_w.evaluator.chain)
            assert str(fp_w) == str(fp_l)

    def test_global_results_match_legacy(self):
        legacy = EscapeAnalysis(paper_partition_sort(), engine="legacy")
        worklist = EscapeAnalysis(paper_partition_sort(), engine="worklist")
        for name in ("append", "split", "ps"):
            assert [str(r.result) for r in worklist.global_all(name)] == [
                str(r.result) for r in legacy.global_all(name)
            ]

    def test_worklist_does_far_less_work(self):
        legacy = EscapeAnalysis(paper_partition_sort(), engine="legacy")
        worklist = EscapeAnalysis(paper_partition_sort(), engine="worklist")
        for analysis in (legacy, worklist):
            for name in ("append", "split", "ps"):
                analysis.global_all(name)
        assert worklist.stats.eval_steps * 10 <= legacy.stats.eval_steps
        assert worklist.stats.worklist_evals == worklist.stats.eval_steps
        assert legacy.stats.worklist_evals == 0

    def test_iteration_cap_widens(self):
        analysis = EscapeAnalysis(
            paper_partition_sort(), engine="worklist", max_iterations=1
        )
        analysis.solve(None)
        assert analysis.last_solved is not None
        assert all(t.widened for t in analysis.last_solved.traces)
        assert str(analysis.global_test("ps", 1).result) == "<1,1>"

    def test_untyped_binding_is_rejected(self):
        e = self.ev()
        expr = parse_expr("letrec f = lambda l. f l in f")
        assert isinstance(expr, Letrec)
        with pytest.raises(AnalysisError, match="not type-annotated"):
            e.solve_bindings(expr, {})

    def test_sharing_classes_reflexive_and_symmetric(self):
        analysis = EscapeAnalysis(paper_partition_sort(), engine="worklist")
        analysis.solve(None)
        classes = analysis.sharing_classes()
        assert classes, "solve should populate the alias partition"
        for name, cls in classes.items():
            assert name in cls
            for other in cls:
                if other in classes:
                    assert classes[other] == cls

    def test_sharing_classes_connect_the_callgraph(self):
        analysis = EscapeAnalysis(paper_partition_sort(), engine="worklist")
        analysis.solve(None)
        classes = analysis.sharing_classes()
        # ps builds its result out of append/split applications
        assert "append" in classes["ps"] or "split" in classes["ps"]

    def test_legacy_analysis_has_no_sharing_classes(self):
        analysis = EscapeAnalysis(paper_partition_sort(), engine="legacy")
        analysis.solve(None)
        assert analysis.sharing_classes() == {}
