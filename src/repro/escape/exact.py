"""The exact escape semantics (§3.2) and the dynamic escape observer.

Two independent formulations of *ground-truth* escapement, used to validate
the abstract analysis (the safety property of §3.5):

1. :class:`DualInterpreter` — the paper's exact escape semantics, with the
   oracle for conditionals implemented the only way an exact semantics can
   be: by running the standard semantics in lock-step and asking it which
   branch is taken.  List escape values keep the paper's structured domain
   ``D_e^{τ list} = (B_e × {err}) + (D_e^τ × D_e^{τ list})``: a cons has a
   *pair* escape value (``cons``/``car``/``cdr`` are ``pair``/``fst``/
   ``snd``).  The cells of the interesting argument are tagged with their
   spine level; the tags found in the result say exactly which spines
   escaped.

2. :func:`observe_escape` — a heap-level observer: run the instrumented
   interpreter, intersect the cells of the interesting argument (by spine
   level) with the cells reachable from the result.

Both return an :class:`ObservedEscape`; they must agree with each other,
and the abstract ``G``/``L`` results must dominate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.escape.lattice import Escapement, NONE_ESCAPES
from repro.lang.ast import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lambda,
    Letrec,
    NilLit,
    Prim,
    Program,
    Var,
)
from repro.lang.errors import AnalysisError, EvalError
from repro.lang.parser import parse_expr
from repro.semantics.heap import Cell
from repro.semantics.interp import Interpreter
from repro.semantics.values import Value, VClosure, VCons, VNil, VTuple


class Source(str):
    """Marks an observer argument as nml source text (evaluated with the
    program's top-level bindings in scope) rather than Python data — the
    way to pass function arguments, e.g. ``Source("pair")``."""


@dataclass(frozen=True)
class ObservedEscape:
    """Ground-truth escapement of one argument from one call.

    ``escaped_levels`` are the spine levels (1 = top) of the argument with
    at least one cell in the result.  ``as_escapement`` renders it on the
    paper's ``B_e`` chain: ``⟨1, s − min(levels) + 1⟩`` — if the topmost
    escaping spine is level ℓ, the bottom ``s − ℓ + 1`` spines escaped.
    """

    param_spines: int
    escaped_levels: frozenset[int]

    @property
    def escaped(self) -> bool:
        return bool(self.escaped_levels)

    @property
    def escaping_spines(self) -> int:
        if not self.escaped_levels:
            return 0
        return self.param_spines - min(self.escaped_levels) + 1

    def as_escapement(self) -> Escapement:
        if not self.escaped_levels:
            return NONE_ESCAPES
        return Escapement(1, self.escaping_spines)


# ---------------------------------------------------------------------------
# 1. The exact escape semantics (lock-step with the concrete oracle)
# ---------------------------------------------------------------------------


class ExactValue:
    """Base of the exact escape domain."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class EBasic(ExactValue):
    """A ``B_e × {err}`` element: ints, bools, nil — nothing applicable."""

    be: Escapement = NONE_ESCAPES


E_BOTTOM = EBasic(NONE_ESCAPES)


@dataclass(frozen=True, slots=True, eq=False)
class EPair(ExactValue):
    """A cons in the exact list domain ``D_e^τ × D_e^{τ list}``.

    ``tag`` marks spine cells of the interesting argument with their spine
    level (1 = top); un-seeded pairs have ``tag = None``.
    """

    fst: ExactValue
    snd: ExactValue
    tag: int | None = None


@dataclass(frozen=True, slots=True, eq=False)
class ETuple(ExactValue):
    """A pair in the exact domain (the tuple extension): components kept
    separately so fst/snd project exactly.  Tuples carry no spine tag —
    Definition 1's spines are car/cdr paths only."""

    fst: ExactValue
    snd: ExactValue


@dataclass(eq=False)
class EClosure(ExactValue):
    """A function in the exact domain: evaluates its body in lock-step."""

    param: str
    body: Expr
    env: "dict[str, tuple[Value, ExactValue]]"
    interp: "DualInterpreter"
    name: str = ""

    def apply(self, arg: "tuple[Value, ExactValue]") -> "tuple[Value, ExactValue]":
        extended = dict(self.env)
        extended[self.param] = arg
        return self.interp.eval(self.body, extended)


@dataclass(eq=False)
class EPrim(ExactValue):
    """A (partially applied) primitive in the exact domain."""

    prim: Prim
    args: tuple = ()


def collect_tags(value: ExactValue) -> set[int]:
    """All interesting-argument spine tags contained in an exact value,
    looking through pairs and closure environments (a closure *contains*
    its free identifiers, per the paper's ``V``)."""
    tags: set[int] = set()
    stack: list[ExactValue] = [value]
    seen: set[int] = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, EPair):
            if current.tag is not None:
                tags.add(current.tag)
            stack.append(current.fst)
            stack.append(current.snd)
        elif isinstance(current, ETuple):
            stack.append(current.fst)
            stack.append(current.snd)
        elif isinstance(current, EClosure):
            stack.extend(ev for _, ev in current.env.values())
        elif isinstance(current, EPrim):
            stack.extend(ev for _, ev in current.args)
    return tags


class DualInterpreter:
    """Lock-step standard + exact escape evaluation.

    The standard half is delegated to an :class:`Interpreter`-owned heap
    only where values must exist concretely (cons cells); control flow
    (the oracle) uses the concrete values directly.
    """

    def __init__(self) -> None:
        self.interp = Interpreter()
        self.steps = 0

    # -- dual evaluation -----------------------------------------------------

    def eval(
        self, expr: Expr, env: dict[str, tuple[Value, ExactValue]]
    ) -> tuple[Value, ExactValue]:
        self.steps += 1
        if isinstance(expr, IntLit):
            return self.interp.eval(expr, _concrete_env(env)), E_BOTTOM
        if isinstance(expr, (BoolLit, NilLit)):
            return self.interp.eval(expr, _concrete_env(env)), E_BOTTOM
        if isinstance(expr, Prim):
            from repro.semantics.values import VPrim

            return VPrim(expr), EPrim(expr)
        if isinstance(expr, Var):
            if expr.name not in env:
                raise EvalError(f"unbound identifier {expr.name!r}", expr.span)
            return env[expr.name]
        if isinstance(expr, Lambda):
            concrete = VClosure(expr, _concrete_env(env))
            return concrete, EClosure(expr.param, expr.body, dict(env), self)
        if isinstance(expr, If):
            cond_value, _ = self.eval(expr.cond, env)
            from repro.semantics.values import VBool

            if not isinstance(cond_value, VBool):
                raise EvalError("if condition is not a bool", expr.cond.span)
            # The oracle: the concrete execution chooses the branch.
            branch = expr.then if cond_value.value else expr.otherwise
            return self.eval(branch, env)
        if isinstance(expr, App):
            fn = self.eval(expr.fn, env)
            arg = self.eval(expr.arg, env)
            return self.apply(fn, arg, expr)
        if isinstance(expr, Letrec):
            extended = dict(env)
            for binding in expr.bindings:
                if isinstance(binding.expr, Lambda):
                    # Tie the knot: closures share the growing env dict.
                    concrete = VClosure(binding.expr, _concrete_env(extended), binding.name)
                    exact = EClosure(
                        binding.expr.param, binding.expr.body, extended, self, binding.name
                    )
                    extended[binding.name] = (concrete, exact)
                else:
                    extended[binding.name] = self.eval(binding.expr, extended)
            return self.eval(expr.body, extended)
        raise EvalError(f"cannot evaluate {type(expr).__name__}", expr.span)

    def apply(
        self,
        fn: tuple[Value, ExactValue],
        arg: tuple[Value, ExactValue],
        node: App | None = None,
    ) -> tuple[Value, ExactValue]:
        _, fn_exact = fn
        if isinstance(fn_exact, EClosure):
            return fn_exact.apply(arg)
        if isinstance(fn_exact, EPrim):
            args = fn_exact.args + (arg,)
            if len(args) < fn_exact.prim.arity:
                from repro.semantics.values import VPrim

                concrete = VPrim(fn_exact.prim, tuple(a for a, _ in args))
                return concrete, EPrim(fn_exact.prim, args)
            return self._exec_prim(fn_exact.prim, args, node)
        raise EvalError("cannot apply non-function", node.span if node else None)

    def _exec_prim(
        self, prim: Prim, args: tuple, node: App | None
    ) -> tuple[Value, ExactValue]:
        name = prim.name
        concrete_args = tuple(a for a, _ in args)
        exact_args = tuple(e for _, e in args)

        if name == "cons":
            cell = self.interp.heap.allocate(concrete_args[0], concrete_args[1], site=prim)
            return VCons(cell), EPair(exact_args[0], exact_args[1])
        if name == "car":
            concrete = self.interp._exec_prim(prim, concrete_args, node)
            exact = exact_args[0]
            if isinstance(exact, EPair):
                return concrete, exact.fst  # fst
            return concrete, exact  # car of an untagged basic list value
        if name == "cdr":
            concrete = self.interp._exec_prim(prim, concrete_args, node)
            exact = exact_args[0]
            if isinstance(exact, EPair):
                return concrete, exact.snd  # snd
            return concrete, exact
        if name == "mkpair":
            concrete = self.interp._exec_prim(prim, concrete_args, node)
            return concrete, ETuple(exact_args[0], exact_args[1])
        if name == "fst":
            concrete = self.interp._exec_prim(prim, concrete_args, node)
            exact = exact_args[0]
            return concrete, exact.fst if isinstance(exact, ETuple) else exact
        if name == "snd":
            concrete = self.interp._exec_prim(prim, concrete_args, node)
            exact = exact_args[0]
            return concrete, exact.snd if isinstance(exact, ETuple) else exact
        # null, arithmetic, comparisons, dcons: result contains nothing of
        # the interesting object (ints/bools), except dcons which rebuilds
        # a pair.
        if name == "dcons":
            concrete = self.interp._exec_prim(prim, concrete_args, node)
            donor = exact_args[0]
            tag = donor.tag if isinstance(donor, EPair) else None
            return concrete, EPair(exact_args[1], exact_args[2], tag=tag)
        concrete = self.interp._exec_prim(prim, concrete_args, node)
        return concrete, E_BOTTOM


def _concrete_env(env: dict[str, tuple[Value, ExactValue]]):
    from repro.semantics.values import Env

    frame = {name: value for name, (value, _) in env.items()}
    return Env(None, frame)


def seed_exact(interp: Interpreter, value: Value, level: int = 1) -> ExactValue:
    """Build the exact escape value of the *interesting* argument: its spine
    cells tagged with their levels, elements seeded one level deeper.

    Tuples are transparent containers but not spines: their components keep
    structure but lists inside tuples are not spines of the argument
    (Definition 1 counts car/cdr paths only), matching the heap observer.
    """
    if isinstance(value, VCons):
        cell = value.cell
        fst = seed_exact(interp, interp.heap.read_car(cell), level + 1)
        snd = seed_exact(interp, interp.heap.read_cdr(cell), level)
        return EPair(fst, snd, tag=level)
    if isinstance(value, VTuple):
        return ETuple(
            _unseeded(interp, value.fst), _unseeded(interp, value.snd)
        )
    return E_BOTTOM


def exact_escape(
    program: Program,
    function: str,
    args_python: list,
    i: int,
) -> ObservedEscape:
    """Run the exact escape semantics (§3.2) for ``function`` applied to
    concrete arguments, with argument ``i`` (1-based) interesting."""
    if not 1 <= i <= len(args_python):
        raise AnalysisError(f"parameter index {i} out of range")
    dual = DualInterpreter()
    # Bring the top-level bindings into scope (dual letrec).
    env: dict[str, tuple[Value, ExactValue]] = {}
    fn_expr = parse_expr(function)
    letrec = Letrec(bindings=program.bindings, body=fn_expr)
    fn_pair = dual.eval(letrec, env)

    result = fn_pair
    spine_count = 0
    for j, arg_py in enumerate(args_python, start=1):
        if isinstance(arg_py, Source):
            letrec_arg = Letrec(bindings=program.bindings, body=parse_expr(arg_py))
            concrete, exact = dual.eval(letrec_arg, {})
            if j == i and isinstance(concrete, (VCons, VNil)):
                # Lists get spine tags; function arguments keep their
                # behaviour (closure identity is not tag-tracked here —
                # use observe_escape for non-list interesting objects).
                exact = seed_exact(dual.interp, concrete)
        else:
            concrete = dual.interp.from_python(arg_py)
            if j == i:
                exact = seed_exact(dual.interp, concrete)
                spine_count = _python_spines(arg_py)
            else:
                exact = _unseeded(dual.interp, concrete)
        result = dual.apply(result, (concrete, exact))

    tags = collect_tags(result[1])
    return ObservedEscape(
        param_spines=spine_count, escaped_levels=frozenset(tags)
    )


def _unseeded(interp: Interpreter, value: Value) -> ExactValue:
    if isinstance(value, VCons):
        cell = value.cell
        return EPair(
            _unseeded(interp, interp.heap.read_car(cell)),
            _unseeded(interp, interp.heap.read_cdr(cell)),
        )
    if isinstance(value, VTuple):
        return ETuple(_unseeded(interp, value.fst), _unseeded(interp, value.snd))
    return E_BOTTOM


def _python_spines(obj) -> int:
    """Spine count of a nested Python list (by structure; 0 for non-lists).
    An empty list still has its own spine."""
    if not isinstance(obj, (list, tuple)):
        return 0
    if not obj:
        return 1
    return 1 + max(_python_spines(item) for item in obj)


# ---------------------------------------------------------------------------
# 2. The dynamic (heap-level) observer
# ---------------------------------------------------------------------------


def observe_escape(
    program: Program,
    function: str,
    args_python: list,
    i: int,
) -> ObservedEscape:
    """Measure true escapement on the instrumented heap: which spine levels
    of argument ``i`` have a cell reachable from the call's result (looking
    through closures and partial applications)."""
    if not 1 <= i <= len(args_python):
        raise AnalysisError(f"parameter index {i} out of range")
    interp = Interpreter()
    fn_value = interp.eval_in(program, function)

    arg_values: list[Value] = [
        interp.eval_in(program, str(a)) if isinstance(a, Source) else interp.from_python(a)
        for a in args_python
    ]
    interesting = arg_values[i - 1]
    spine_of: dict[Cell, set[int]] = interp.heap.spine_map(interesting)

    result = fn_value
    for value in arg_values:
        result = interp.apply(result, value)

    reachable = interp.heap.reachable_cells(result)
    escaped: set[int] = set()
    for cell, levels in spine_of.items():
        if cell in reachable:
            escaped |= levels
    interesting_arg = args_python[i - 1]
    if isinstance(interesting_arg, Source):
        param_spines = max((max(ls) for ls in spine_of.values()), default=0)
    else:
        param_spines = _python_spines(interesting_arg)
    return ObservedEscape(
        param_spines=param_spines,
        escaped_levels=frozenset(escaped),
    )
