"""Benchmark-harness configuration.

Every module in this directory regenerates one artifact of the paper (a
figure, a table, or an Appendix A scenario) — see the experiment index in
DESIGN.md.  Each test asserts the paper's *shape* (who wins, by what kind
of factor, which lattice values come out) and times the underlying
operation with pytest-benchmark.  Run with ``-s`` to see the regenerated
tables alongside the timings::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks double as shape-assertions; keep rounds small so the whole
    # harness regenerates every artifact in minutes.
    config.option.benchmark_min_rounds = min(
        getattr(config.option, "benchmark_min_rounds", 5) or 5, 3
    )
