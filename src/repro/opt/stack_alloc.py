"""Stack allocation of non-escaping spines (§A.3.1).

For the program's result call ``f e₁ … eₙ``: if the local escape test says
the top ``t ≥ 1`` spines of argument ``eᵢ`` do not escape ``f``, the cons
cells building those spines can live in ``f``'s activation record — they
"disappear" when the call returns, with zero reclamation cost.

Mechanically: the call expression is annotated with a *stack region* (the
activation record), and each ``cons`` site inside the argument expression
that builds one of the top ``t`` spines is annotated to allocate into the
innermost open region.  The interpreter opens the region before evaluating
the call and frees it — checking nothing escaping is lost — right after.

Only syntactically visible spine construction (list literals / cons chains)
can be redirected this way; lists built by called functions are the block
allocation optimization's job (§A.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.escape.analyzer import EscapeAnalysis
from repro.escape.results import EscapeResults
from repro.lang.ast import App, Expr, Prim, Program, clone_program, uncurry_app
from repro.lang.errors import OptimizationError


@dataclass
class StackAllocResult:
    program: Program
    annotated_sites: int
    #: per argument position (1-based): the non-escaping prefix used
    prefixes: dict[int, int] = field(default_factory=dict)


def _annotate_literal_spines(arg: Expr, max_depth: int) -> int:
    """Annotate cons sites of a literal cons chain up to spine depth
    ``max_depth`` (1 = top spine).  Returns the number of annotated sites."""
    count = 0

    def go(node: Expr, depth: int) -> None:
        nonlocal count
        if depth > max_depth or not isinstance(node, App):
            return
        head, args = uncurry_app(node)
        if isinstance(head, Prim) and head.name == "cons" and len(args) == 2:
            head.annotations["alloc"] = "region"
            count += 1
            go(args[0], depth + 1)  # element: one spine deeper
            go(args[1], depth)  # tail: same spine
        # other applications: opaque — their allocations belong to block
        # allocation, not stack allocation

    go(arg, 1)
    return count


def stack_allocate_body(
    program: Program, analysis: EscapeResults | None = None
) -> StackAllocResult:
    """Apply §A.3.1 to the program's result expression.

    Returns an annotated *copy*; the input program is untouched.  Raises
    :class:`OptimizationError` if the body is not an application or no
    argument has a non-escaping literal spine to redirect.
    """
    program = clone_program(program)
    body = program.body
    head, args = uncurry_app(body)
    if not args:
        raise OptimizationError("program body is not a function application")

    analysis = analysis or EscapeAnalysis(program)
    results = analysis.local_test(body)

    total = 0
    prefixes: dict[int, int] = {}
    for result, arg in zip(results, args):
        prefix = result.non_escaping_spines
        if result.param_spines < 1 or prefix < 1:
            continue
        annotated = _annotate_literal_spines(arg, prefix)
        if annotated:
            prefixes[result.param_index] = prefix
            total += annotated

    if total == 0:
        raise OptimizationError(
            "no argument of the body call has a non-escaping spine built by "
            "a visible cons chain; nothing to stack-allocate"
        )

    body.annotations["region"] = {"kind": "stack", "label": "activation"}
    return StackAllocResult(program=program, annotated_sites=total, prefixes=prefixes)
