"""Worst-case escape functions ``W^τ`` (Definition 2, §4.1).

``W^τ`` is the abstract function of an nml function *from which every
argument escapes*::

    W^τ = λx1.⟨x1₍₁₎, λx2.⟨x1₍₁₎ ⊔ x2₍₁₎, … λxm.⟨⊔ xi₍₁₎, err⟩ …⟩⟩

where ``m`` is the number of arguments a value of type ``τ`` can take before
returning a primitive value, ``W^{τ list} = W^τ`` (the abstract list domain
collapses), and — for the tuple extension — ``W^{τ1×τ2}`` behaves as the
join of the components' worst functions (the collapsed tuple value could be
either component).  For base types, ``W^τ = err``.

The global escape test applies the function under analysis to worst-case
arguments ``⟨⟨1,sᵢ⟩, W^{τᵢ}⟩``, making its result valid for *every* possible
application.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.domain import ERR, AbsFun, EscapeValue
from repro.escape.lattice import Escapement, NONE_ESCAPES
from repro.types.types import TFun, TList, TProd, Type, spines


def _strip_lists(ty: Type) -> Type:
    while isinstance(ty, TList):
        ty = ty.element
    return ty


@dataclass(frozen=True)
class WorstFun(AbsFun):
    """One step of the ``W^τ`` chain: consumes the next argument, joins its
    contained part into the accumulator, and continues (or bottoms out with
    ``err`` when no arguments remain)."""

    remaining: Type  # the function type still to be consumed (lists stripped)
    acc: Escapement

    def apply(self, arg: EscapeValue) -> EscapeValue:
        assert isinstance(self.remaining, TFun)
        acc = self.acc.join(arg.be)
        return EscapeValue(acc, _continue(self.remaining.result, acc))

    def __repr__(self) -> str:
        return f"W[{self.remaining}]@{self.acc}"


def _continue(ty: Type, acc: Escapement) -> AbsFun:
    """The function component of the worst-case value at type ``ty`` with
    ``acc`` already accumulated."""
    core = _strip_lists(ty)
    if isinstance(core, TFun):
        return WorstFun(core, acc)
    if isinstance(core, TProd):
        return _continue(core.fst, acc).join(_continue(core.snd, acc))
    return ERR


def worst_fun(ty: Type) -> AbsFun:
    """``W^τ`` as an :class:`AbsFun` (``err`` for base types)."""
    return _continue(ty, NONE_ESCAPES)


def worst_value(ty: Type, interesting: bool) -> EscapeValue:
    """The argument value the global test feeds parameter ``i``:
    ``⟨⟨1,sᵢ⟩, W^{τᵢ}⟩`` when interesting, ``⟨⟨0,0⟩, W^{τᵢ}⟩`` otherwise."""
    be = Escapement(1, spines(ty)) if interesting else NONE_ESCAPES
    return EscapeValue(be, worst_fun(ty))


def worst_escapement(ty: Type) -> Escapement:
    """The maximal escapement of an argument of type ``τ``: ⟨1, sᵢ⟩.

    This is what applying any function to ``worst_value(τ, True)`` can at
    most yield for that argument, so it is ⊒ every exact answer — the sound
    fallback the hardened engine degrades to when a query breaches its
    budget.
    """
    return Escapement(1, spines(ty))


def worst_test_result(
    function: str, i: int, param_type: Type, kind: str = "global"
):
    """A ``W^τ``-derived worst-case escape-test result for parameter ``i``.

    Sound for every application (Definition 2): it reports that all ``sᵢ``
    spines of the argument may escape, which over-approximates whatever the
    exact analysis would have concluded.
    """
    from repro.escape.results import EscapeTestResult

    return EscapeTestResult(
        function=function,
        param_index=i,
        param_spines=spines(param_type),
        param_type=param_type,
        result=worst_escapement(param_type),
        kind=kind,
    )
