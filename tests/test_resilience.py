"""The resilience policy engine: deterministic backoff, the per-target
circuit breaker, poison-input quarantine, and their composition in
:class:`~repro.robust.resilience.Resilience`.

The properties that matter for the always-answer contract: delays are a
pure function of ``(seed, key, attempt)`` (chaos runs replay exactly),
breaker transitions follow closed → open → half-open → {closed, open}
under an injected clock (no real waiting), quarantine keeps the full
failure history, and ``Resilience.run`` maps every non-fatal failure mode
onto exactly one :class:`~repro.robust.resilience.Outcome` shape.
"""

from __future__ import annotations

import pytest

from repro.lang.errors import AnalysisError, TypeInferenceError
from repro.obs import RingBufferSink, Tracer, activate
from repro.obs.events import validate_trace
from repro.robust.resilience import (
    CircuitBreaker,
    Outcome,
    Quarantine,
    Resilience,
    ResiliencePolicy,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


def test_backoff_is_deterministic_per_seed_key_attempt():
    a = RetryPolicy(seed=7)
    b = RetryPolicy(seed=7)
    for attempt in (1, 2, 3, 9):
        assert a.delay("x.nml", attempt) == b.delay("x.nml", attempt)
        assert a.jitter_fraction("x.nml", attempt) == b.jitter_fraction(
            "x.nml", attempt
        )


def test_backoff_decorrelates_across_seeds_and_keys():
    policy = RetryPolicy(seed=0)
    other_seed = RetryPolicy(seed=1)
    assert policy.delay("a.nml", 1) != other_seed.delay("a.nml", 1)
    assert policy.delay("a.nml", 1) != policy.delay("b.nml", 1)


def test_backoff_grows_exponentially_within_the_jitter_band():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=100.0, jitter=0.5)
    for attempt in range(1, 6):
        capped = 0.1 * 2.0 ** (attempt - 1)
        delay = policy.delay("k", attempt)
        assert capped * 0.75 <= delay <= capped * 1.25


def test_backoff_caps_at_max_delay():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0, max_delay_s=2.0, jitter=0.0)
    assert policy.delay("k", 5) == 2.0


def test_zero_jitter_is_pure_exponential():
    policy = RetryPolicy(base_delay_s=0.5, multiplier=2.0, max_delay_s=100.0, jitter=0.0)
    assert [policy.delay("k", n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]


def test_should_retry_boundary():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1) and policy.should_retry(2)
    assert not policy.should_retry(3)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


def test_breaker_opens_at_threshold_and_refuses():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)
    assert breaker.allow("t")
    breaker.record_failure("t")
    breaker.record_failure("t")
    assert breaker.state("t") == "closed" and breaker.allow("t")
    breaker.record_failure("t")
    assert breaker.state("t") == "open" and not breaker.allow("t")
    # other targets are unaffected
    assert breaker.allow("elsewhere")


def test_breaker_half_open_probe_closes_on_success():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
    breaker.record_failure("t")
    assert not breaker.allow("t")
    clock.advance(5.0)
    assert breaker.state("t") == "half-open" and breaker.allow("t")
    breaker.record_success("t")
    assert breaker.state("t") == "closed"


def test_breaker_half_open_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=5.0, clock=clock)
    breaker.record_failure("t")
    breaker.record_failure("t")
    clock.advance(5.0)
    assert breaker.state("t") == "half-open"
    breaker.record_failure("t")  # one probe failure suffices in half-open
    assert breaker.state("t") == "open" and not breaker.allow("t")
    # ... and the cooldown restarts from the re-open
    clock.advance(4.9)
    assert not breaker.allow("t")
    clock.advance(0.1)
    assert breaker.allow("t")


def test_breaker_success_resets_failure_count():
    breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
    breaker.record_failure("t")
    breaker.record_success("t")
    breaker.record_failure("t")
    assert breaker.state("t") == "closed"


def test_breaker_snapshot_and_transition_events():
    ring = RingBufferSink(capacity=None)
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
    with activate(Tracer(sinks=[ring])):
        breaker.record_failure("t")
        clock.advance(1.0)
        breaker.state("t")
        breaker.record_success("t")
    states = [e["state"] for e in ring.events if e["type"] == "circuit_state"]
    assert states == ["open", "half-open", "closed"]
    assert breaker.snapshot() == {"t": "closed"}
    validate_trace(ring.events)


def test_breaker_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)


# ---------------------------------------------------------------------------
# quarantine
# ---------------------------------------------------------------------------


def test_quarantine_records_full_history():
    ring = RingBufferSink(capacity=None)
    quarantine = Quarantine()
    with activate(Tracer(sinks=[ring])):
        quarantine.add("bad.nml", attempts=3, reason="analysis-error", errors=["a", "b"])
    assert "bad.nml" in quarantine and len(quarantine) == 1
    assert quarantine.to_json() == [
        {
            "key": "bad.nml",
            "attempts": 3,
            "reason": "analysis-error",
            "errors": ["a", "b"],
        }
    ]
    assert [e["type"] for e in ring.events] == ["quarantine"]
    validate_trace(ring.events)


# ---------------------------------------------------------------------------
# the composed engine
# ---------------------------------------------------------------------------


def _engine(max_attempts=3, threshold=99) -> tuple[Resilience, list[float]]:
    sleeps: list[float] = []
    engine = Resilience(
        ResiliencePolicy(
            retry=RetryPolicy(max_attempts=max_attempts, base_delay_s=0.01),
            breaker_threshold=threshold,
        ),
        clock=FakeClock(),
        sleep=sleeps.append,
    )
    return engine, sleeps


def test_run_success_first_try():
    engine, sleeps = _engine()
    outcome = engine.run("k", lambda: 42)
    assert outcome == Outcome(key="k", value=42, ok=True, attempts=1)
    assert sleeps == []


def test_run_retries_then_succeeds_with_deterministic_sleeps():
    engine, sleeps = _engine()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise AnalysisError("transient")
        return "done"

    outcome = engine.run("k", flaky)
    assert outcome.ok and outcome.value == "done" and outcome.attempts == 3
    retry = engine.policy.retry
    assert sleeps == [retry.delay("k", 1), retry.delay("k", 2)]


def test_run_exhaustion_quarantines_and_short_circuits_next_call():
    engine, _ = _engine(max_attempts=2)
    outcome = engine.run("k", self_destruct)
    assert outcome.quarantined and not outcome.ok and outcome.attempts == 2
    assert outcome.reason == "analysis-failed" and len(outcome.errors) == 2
    assert "k" in engine.quarantine
    # the poison key is never attempted again
    again = engine.run("k", lambda: pytest.fail("must not be called"))
    assert again.quarantined and again.reason == "quarantined" and again.attempts == 0


def self_destruct():
    raise AnalysisError("poison")


def test_run_fatal_errors_propagate():
    engine, _ = _engine()

    def fatal():
        raise TypeInferenceError("untypeable")

    with pytest.raises(TypeInferenceError):
        engine.run("k", fatal)
    assert "k" not in engine.quarantine  # fatal is not retried into quarantine


def test_run_circuit_refusal_makes_no_attempt():
    engine, _ = _engine(max_attempts=1, threshold=1)
    engine.run("k", self_destruct)  # quarantined AND trips the breaker
    refused = engine.run("other-key", lambda: 1)
    assert refused.ok  # breaker is per-target
    assert not engine.breaker.allow("k")


def test_run_emits_schema_valid_retry_events():
    ring = RingBufferSink(capacity=None)
    engine, _ = _engine(max_attempts=3)
    with activate(Tracer(sinks=[ring])):
        engine.run("k", self_destruct)
    types = [e["type"] for e in ring.events]
    assert types.count("retry") == 2 and types[-1] == "quarantine"
    validate_trace(ring.events)
