"""OB2 — the cost of the always-on crash flight recorder.

The flight recorder (:mod:`repro.obs.flight`) rides along on *every*
CLI command, so its cost is the price of the black box: the tracer is
active, every instrumentation point builds its event dict, and the
recorder appends it to a bounded deque.  This experiment measures that
price on the analysis hot path — repeated fresh global solves of a
recursive prelude knot — against the same workload with tracing
disabled (where every ``obs.tracing()`` guard short-circuits), and
asserts the overhead stays under 5% of eval-step wall time.

Rounds alternate between the two configurations so clock drift and
cache warming cancel instead of biasing one side.
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager

from repro.bench.tables import print_table
from repro.escape.analyzer import EscapeAnalysis
from repro.lang.prelude import prelude_program
from repro.obs import Tracer, activate
from repro.obs.flight import FlightRecorder

KNOT = ["ps", "rev", "isort"]
ROUNDS = 7
SOLVES_PER_ROUND = 3

#: The acceptance bound: always-on flight recording must cost < 5%.
MAX_OVERHEAD_PCT = 5.0


def _solve_once() -> None:
    program = prelude_program(KNOT)
    analysis = EscapeAnalysis(program)
    for name in program.binding_names():
        analysis.global_all(name)


@contextmanager
def _tracing_off():
    # A disabled tracer: ``tracing()`` returns None, hot paths skip
    # event construction entirely — the AB4 zero-overhead baseline.
    with activate(Tracer(enabled=False)):
        yield


@contextmanager
def _flight_on():
    with activate(Tracer(sinks=[FlightRecorder()])):
        yield


def _round(scope) -> float:
    with scope():
        started = time.perf_counter()
        for _ in range(SOLVES_PER_ROUND):
            _solve_once()
        return (time.perf_counter() - started) / SOLVES_PER_ROUND


def test_ob2_flight_recorder_overhead(benchmark):
    # Warm both paths once (imports, parser tables, code caches).
    _round(_tracing_off)
    _round(_flight_on)

    off_times: list[float] = []
    flight_times: list[float] = []
    for _ in range(ROUNDS):
        off_times.append(_round(_tracing_off))
        flight_times.append(_round(_flight_on))

    off = statistics.median(off_times)
    flight = statistics.median(flight_times)
    overhead_pct = (flight - off) / off * 100.0

    print_table(
        ["config", "median solve (ms)", "overhead"],
        [
            ["tracing off", f"{off * 1e3:.2f}", "—"],
            ["flight recorder", f"{flight * 1e3:.2f}", f"{overhead_pct:+.2f}%"],
        ],
        title="OB2: always-on flight recorder overhead",
    )

    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"flight recorder costs {overhead_pct:.2f}% "
        f"(bound: {MAX_OVERHEAD_PCT}%)"
    )

    benchmark(_round, _flight_on)


def test_ob2_flight_recorder_captures_while_cheap():
    # The price buys an actual black box: the same workload leaves the
    # causal run-up in the ring, bounded at capacity.
    flight = FlightRecorder(capacity=256)
    with activate(Tracer(sinks=[flight])):
        _solve_once()
    assert flight.total > 0
    window = flight.snapshot()
    assert 0 < len(window) <= 256
    types = {event["type"] for event in window}
    assert "scc_solve_finish" in types or "transfer_eval" in types
