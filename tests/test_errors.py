"""Error-module tests: spans, formatting, the exception hierarchy."""

import pytest

from repro.lang.errors import (
    NO_SPAN,
    AnalysisError,
    EvalError,
    LexError,
    NmlError,
    OptimizationError,
    ParseError,
    SourceSpan,
    TypeInferenceError,
    UseAfterFreeError,
)


class TestSourceSpan:
    def test_single_line_str(self):
        assert str(SourceSpan(1, 2, 1, 5)) == "1:2-5"

    def test_multi_line_str(self):
        assert str(SourceSpan(1, 2, 3, 4)) == "1:2-3:4"

    def test_point(self):
        span = SourceSpan.point(7, 3)
        assert (span.line, span.column, span.end_line, span.end_column) == (7, 3, 7, 3)

    def test_merge_orders_endpoints(self):
        a = SourceSpan(2, 5, 2, 9)
        b = SourceSpan(1, 1, 1, 4)
        merged = a.merge(b)
        assert (merged.line, merged.column) == (1, 1)
        assert (merged.end_line, merged.end_column) == (2, 9)

    def test_merge_is_commutative(self):
        a = SourceSpan(1, 1, 1, 4)
        b = SourceSpan(2, 5, 2, 9)
        assert a.merge(b) == b.merge(a)

    def test_spans_are_hashable(self):
        assert len({SourceSpan(1, 1, 1, 2), SourceSpan(1, 1, 1, 2)}) == 1


class TestFormatting:
    def test_message_with_span(self):
        error = ParseError("unexpected thing", SourceSpan(3, 7, 3, 9))
        assert error.format() == "3:7-9: unexpected thing"
        assert str(error) == "3:7-9: unexpected thing"

    def test_message_without_span(self):
        assert NmlError("plain").format() == "plain"

    def test_no_span_sentinel_suppressed(self):
        assert NmlError("plain", NO_SPAN).format() == "plain"


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            LexError,
            ParseError,
            TypeInferenceError,
            EvalError,
            AnalysisError,
            OptimizationError,
        ],
    )
    def test_all_derive_from_nml_error(self, cls):
        assert issubclass(cls, NmlError)

    def test_use_after_free_is_an_eval_error(self):
        assert issubclass(UseAfterFreeError, EvalError)

    def test_catching_the_base_class(self):
        with pytest.raises(NmlError):
            raise TypeInferenceError("mismatch")
