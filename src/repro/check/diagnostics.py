"""The shared diagnostic framework of :mod:`repro.check`.

Every finding any checker pass produces is a :class:`Diagnostic`: a stable
rule ID (``AUD003``, ``LNT001``, ``MCH004``, ...), a severity, a message,
and a :class:`~repro.lang.errors.SourceSpan` pointing back into the program
text.  Rules are declared once in a :class:`RuleRegistry` so the CLI can
print the rule table, the JSON output is schema-stable, and a rule's
severity is defined in exactly one place.

Severities:

* **error**   — the checked artifact is *unsound*: an optimization whose
  justification does not re-derive, a machine-code stream that underflows
  its stack or reads a dead slot.  Errors gate ``repro check`` (exit 4).
* **warning** — suspicious but not provably unsound (shadowing, unused
  bindings, a sharing obligation the checker cannot discharge).
* **hint**    — a provably *missed* opportunity: the analysis licenses an
  optimization the program does not use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang.errors import NO_SPAN, SourceSpan


class CheckSeverity(enum.Enum):
    """How serious one finding is.  Ordered: hint < warning < error."""

    HINT = "hint"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"hint": 0, "warning": 1, "error": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Rule:
    """One checkable rule with a stable, documented identity."""

    id: str  # "AUD003" — stable across releases, never recycled
    name: str  # "unsound-reuse-escape" — kebab-case slug
    severity: CheckSeverity
    pass_name: str  # "audit" | "lint" | "machine"
    summary: str  # one line for the rule table


class RuleRegistry:
    """The closed set of rules a checker build knows about."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def all(self) -> list[Rule]:
        return sorted(self._rules.values(), key=lambda r: r.id)

    def table(self) -> str:
        """The rule table ``repro check --rules`` prints."""
        lines = [f"{'ID':<8} {'severity':<8} {'pass':<8} name / summary"]
        for rule in self.all():
            lines.append(
                f"{rule.id:<8} {rule.severity.value:<8} {rule.pass_name:<8} "
                f"{rule.name} — {rule.summary}"
            )
        return "\n".join(lines) + "\n"


#: The one registry every pass registers into at import time.
REGISTRY = RuleRegistry()


def rule(
    id: str, name: str, severity: CheckSeverity, pass_name: str, summary: str
) -> Rule:
    """Declare-and-register shorthand used by the pass modules."""
    return REGISTRY.register(Rule(id, name, severity, pass_name, summary))


@dataclass(frozen=True)
class Diagnostic:
    """One finding, pointing back into the program text."""

    rule: Rule
    message: str
    span: SourceSpan = NO_SPAN
    #: where in the program ("append_reuse", "<body>", "code[3].then[1]")
    context: str = ""

    @property
    def severity(self) -> CheckSeverity:
        return self.rule.severity

    def format(self) -> str:
        location = str(self.span) if self.span != NO_SPAN else "-"
        where = f" [{self.context}]" if self.context else ""
        return (
            f"{location}: {self.severity.value}: "
            f"{self.rule.id} ({self.rule.name}){where}: {self.message}"
        )

    def span_text(self) -> "str | None":
        """The span as compact text (``"3:10-21"``), ``None`` for no span —
        the form snapshot artifacts store and the differ pairs on."""
        return None if self.span == NO_SPAN else str(self.span)

    def identity(self) -> tuple:
        """The cross-revision identity of this finding: rule, place, and
        context — deliberately *not* the message, whose wording may carry
        engine-internal values that churn without the finding changing."""
        return (self.rule.id, self.span_text() or "", self.context)

    def to_json(self) -> dict:
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "severity": self.severity.value,
            "pass": self.rule.pass_name,
            "message": self.message,
            "context": self.context,
            "span": None
            if self.span == NO_SPAN
            else {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            },
        }


@dataclass
class CheckReport:
    """Everything one ``repro check`` run found for one program."""

    path: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: pass name -> wall seconds (the per-pass span timings, folded)
    pass_timings: dict[str, float] = field(default_factory=dict)
    #: passes that crashed: pass name -> error text (contained, not raised)
    pass_errors: dict[str, str] = field(default_factory=dict)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: "list[Diagnostic]") -> None:
        self.diagnostics.extend(diagnostics)

    def by_severity(self, severity: CheckSeverity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(CheckSeverity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(CheckSeverity.WARNING)

    @property
    def hints(self) -> list[Diagnostic]:
        return self.by_severity(CheckSeverity.HINT)

    @property
    def ok(self) -> bool:
        """No error-severity findings and no crashed pass."""
        return not self.errors and not self.pass_errors

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "hint": len(self.hints),
        }

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Most severe first, then source order."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                -d.severity.rank,
                d.span.line,
                d.span.column,
                d.rule.id,
            ),
        )

    def render(self) -> str:
        """The human-readable report."""
        lines = [d.format() for d in self.sorted_diagnostics()]
        for pass_name, error in sorted(self.pass_errors.items()):
            lines.append(f"-: error: {pass_name} pass failed: {error}")
        counts = self.counts()
        label = self.path or "<program>"
        lines.append(
            f"{label}: {counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['hint']} hint(s)"
        )
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_json() for d in self.sorted_diagnostics()],
            "pass_errors": dict(self.pass_errors),
            "pass_timings": {
                name: round(seconds, 9)
                for name, seconds in sorted(self.pass_timings.items())
            },
        }
