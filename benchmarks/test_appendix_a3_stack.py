"""A3a — §A.3.1: stack allocation of the non-escaping literal spine.

The spine of [5,2,7,1,3,4] does not escape PS, so its cells live in the
activation and vanish on return: zero GC-managed cells for the argument,
same program result.
"""

from repro.bench.tables import print_table
from repro.bench.workloads import literal, random_int_list
from repro.lang.prelude import prelude_program
from repro.opt.stack_alloc import stack_allocate_body
from repro.semantics.interp import run_program


def test_a3a_paper_list(benchmark):
    program = prelude_program(["ps"], "ps [5, 2, 7, 1, 3, 4]")
    optimized = stack_allocate_body(program)

    result, metrics = benchmark(run_program, optimized.program)
    base_result, base_metrics = run_program(program)

    assert result == base_result == [1, 2, 3, 4, 5, 7]
    assert metrics.stack_reclaimed == 6  # the literal's whole spine
    assert metrics.heap_allocs == base_metrics.heap_allocs - 6

    print_table(
        ["variant", "heap cells", "stack cells", "stack-reclaimed"],
        [
            ["PS [5,2,7,1,3,4]", base_metrics.heap_allocs, 0, 0],
            ["stack-allocated", metrics.heap_allocs, metrics.region_allocs, metrics.stack_reclaimed],
        ],
        title="§A.3.1 stack allocation",
    )


def test_a3a_scales_with_list_size(benchmark):
    rows = []
    for n in (8, 16, 32, 64):
        values = random_int_list(n, seed=n)
        program = prelude_program(["ps"], f"ps {literal(values)}")
        optimized = stack_allocate_body(program)
        _, base = run_program(program)
        result, metrics = run_program(optimized.program)
        assert result == sorted(values)
        assert metrics.stack_reclaimed == n
        rows.append([n, base.heap_allocs, metrics.heap_allocs, metrics.stack_reclaimed])

    print_table(
        ["n", "baseline heap cells", "optimized heap cells", "stack-reclaimed"],
        rows,
        title="stack allocation vs input size",
    )

    values = random_int_list(32, seed=3)
    optimized = stack_allocate_body(prelude_program(["ps"], f"ps {literal(values)}"))
    benchmark(run_program, optimized.program)


def test_a3a_map_pair_two_spines(benchmark):
    # §1's stronger claim: BOTH spines of the nested literal are
    # stack-allocatable in the map call.
    from repro.lang.prelude import paper_map_pair

    optimized = stack_allocate_body(paper_map_pair())
    result, metrics = benchmark(run_program, optimized.program)
    assert result == [3, 7, 11]
    assert metrics.stack_reclaimed == 9  # 3 outer + 6 inner cells
