"""Exception hierarchy for the nml language toolchain.

Every error raised by the front end, the type checker, the interpreter, the
escape analyzer, or the optimizer derives from :class:`NmlError`, so clients
can catch one type to handle "anything went wrong with this program".
Errors carry an optional source location (:class:`SourceSpan`) so messages
can point back into the program text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of source text: line/column of start and end.

    Lines and columns are 1-based, matching what editors display.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        if self.line == self.end_line:
            return f"{self.line}:{self.column}-{self.end_column}"
        return f"{self.line}:{self.column}-{self.end_line}:{self.end_column}"

    @staticmethod
    def point(line: int, column: int) -> "SourceSpan":
        """A zero-width span, used when only a start position is known."""
        return SourceSpan(line, column, line, column)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """The smallest span covering both ``self`` and ``other``."""
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column), (other.end_line, other.end_column))
        return SourceSpan(start[0], start[1], end[0], end[1])


#: Span used for synthesized nodes that have no source text.
NO_SPAN = SourceSpan(0, 0, 0, 0)


class NmlError(Exception):
    """Base class for every error in the toolchain."""

    def __init__(self, message: str, span: SourceSpan | None = None):
        self.message = message
        self.span = span
        super().__init__(self.format())

    def format(self) -> str:
        if self.span is not None and self.span != NO_SPAN:
            return f"{self.span}: {self.message}"
        return self.message


class LexError(NmlError):
    """Raised on malformed input text (bad character, unterminated token)."""


class ParseError(NmlError):
    """Raised on syntactically invalid programs."""


class ResolveError(NmlError):
    """Raised when an identifier cannot be resolved to a binding."""


class TypeInferenceError(NmlError):
    """Raised when a program is not typable (unification failure, occurs
    check, arity mismatch)."""


class EvalError(NmlError):
    """Raised by the standard interpreter on a dynamic error (car of nil,
    applying a non-function, arithmetic on non-integers)."""


class UseAfterFreeError(EvalError):
    """Raised when the interpreter touches a cons cell whose region has been
    reclaimed.

    This is the runtime tripwire that makes unsound storage optimizations
    *observable*: if the escape analysis were wrong and a stack-allocated
    spine escaped its activation, the next access would raise this error
    instead of silently reading garbage.
    """


class HeapAllocationError(EvalError):
    """Raised when a heap allocation cannot be satisfied.

    In the real world this is memory pressure; here it is produced
    deterministically by the fault-injection harness
    (:mod:`repro.robust.faults`) so the engine's retry/degrade paths can be
    exercised.  It is classified *retryable* by the robustness taxonomy.
    """


class StorageSafetyError(EvalError):
    """Raised by the storage-safety sanitizer on a detected violation:
    a read through a stale alias of a ``dcons``-reused cell, a read of a
    region-reclaimed cell, or reclamation of a cell that is still live.

    Distinct from :class:`UseAfterFreeError` (the always-on tripwire): the
    sanitizer is opt-in instrumentation that also catches *reuse* hazards,
    which do not involve freed cells at all.
    """


class AnalysisError(NmlError):
    """Raised on misuse of the escape analysis API (unknown function,
    argument index out of range, non-function analyzed as function)."""


class OptimizationError(NmlError):
    """Raised when a requested transformation is inapplicable (for example,
    asking for in-place reuse of a parameter whose spines escape)."""
