"""EXT1 — the §7 extension: escape analysis over tuples.

The paper closes by noting the approach "could be applied to other data
structures such as tuples".  This bench validates the extension two ways:

* the tuple-returning ``split_pair``/``ps_pair`` reproduce the exact escape
  table of the paper's two-spine-list encoding (Appendix A.1);
* a golden table over the tuple prelude, with ground-truth agreement.
"""

from repro.bench.tables import print_table
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import observe_escape
from repro.lang.prelude import prelude_program
from repro.semantics.interp import run_program

TUPLE_GOLDEN = [
    ("swap", ["<1,0>"]),
    ("dup", ["<1,0>"]),
    ("zip", ["<1,0>", "<1,0>"]),
    ("unzip", ["<1,0>"]),
    ("split_pair", ["<0,0>", "<1,0>", "<1,1>", "<1,1>"]),
    ("ps_pair", ["<1,0>"]),
]


def test_ext1_tuple_split_matches_paper(benchmark):
    def both_tables():
        pair_rows = EscapeAnalysis(prelude_program(["split_pair"])).global_all("split_pair")
        list_rows = EscapeAnalysis(prelude_program(["split"])).global_all("split")
        return pair_rows, list_rows

    pair_rows, list_rows = benchmark.pedantic(both_tables, rounds=1, iterations=1)
    assert [str(r.result) for r in pair_rows] == [str(r.result) for r in list_rows]

    print_table(
        ["param", "split (paper, 2-spine list)", "split_pair (tuple result)"],
        [
            [i + 1, str(list_rows[i].result), str(pair_rows[i].result)]
            for i in range(4)
        ],
        title="EXT1: the tuple encoding reproduces Appendix A.1's SPLIT column",
    )


def test_ext1_golden_table(benchmark):
    def compute():
        table = {}
        for name, _ in TUPLE_GOLDEN:
            analysis = EscapeAnalysis(prelude_program([name]))
            table[name] = [str(r.result) for r in analysis.global_all(name)]
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    for name, expected in TUPLE_GOLDEN:
        assert table[name] == expected

    print_table(
        ["function", "G(f, i) per parameter"],
        [[name, " ".join(values)] for name, values in table.items()],
        title="EXT1: global escape table over the tuple prelude",
    )


def test_ext1_ps_pair_runs_and_observer_agrees(benchmark):
    program = prelude_program(["ps_pair"], "ps_pair [5, 2, 7, 1, 3, 4]")
    result, metrics = benchmark(run_program, program)
    assert result == [1, 2, 3, 4, 5, 7]

    observed = observe_escape(prelude_program(["ps_pair"]), "ps_pair", [[5, 2, 7, 1]], 1)
    assert not observed.escaped  # abstract says <1,0>: the spine stays home
