"""Primitive execution, shared by the tree-walking interpreter, the dual
(exact-semantics) interpreter, and the abstract machine.

One function, one source of truth for the dynamic semantics of every
primitive — including ``cons``'s allocation-site bookkeeping and ``dcons``'s
in-place reuse.
"""

from __future__ import annotations

from repro.lang.ast import Prim
from repro.lang.errors import EvalError, SourceSpan
from repro.semantics.heap import Heap
from repro.semantics.values import (
    FALSE,
    TRUE,
    Value,
    VCons,
    VInt,
    VNil,
    VTuple,
    expect_int,
)

_ARITH = {"+", "-", "*", "/"}
_COMPARE = {"==", "<>", "<", "<=", ">", ">="}


def exec_prim(
    heap: Heap,
    prim: Prim,
    args: tuple[Value, ...],
    span: SourceSpan | None = None,
) -> Value:
    """Execute a saturated primitive application."""
    name = prim.name

    if name in _ARITH or name in _COMPARE:
        left = expect_int(args[0], name)
        right = expect_int(args[1], name)
        if name == "+":
            return VInt(left + right)
        if name == "-":
            return VInt(left - right)
        if name == "*":
            return VInt(left * right)
        if name == "/":
            if right == 0:
                raise EvalError("division by zero", span)
            return VInt(left // right)
        if name == "==":
            return TRUE if left == right else FALSE
        if name == "<>":
            return TRUE if left != right else FALSE
        if name == "<":
            return TRUE if left < right else FALSE
        if name == "<=":
            return TRUE if left <= right else FALSE
        if name == ">":
            return TRUE if left > right else FALSE
        return TRUE if left >= right else FALSE

    if name == "cons":
        return VCons(heap.allocate(args[0], args[1], site=prim))
    if name == "car":
        if isinstance(args[0], VNil):
            raise EvalError("car of nil", span)
        if not isinstance(args[0], VCons):
            raise EvalError(f"car of non-list {args[0]}", span)
        return heap.car_of(args[0])
    if name == "cdr":
        if isinstance(args[0], VNil):
            raise EvalError("cdr of nil", span)
        if not isinstance(args[0], VCons):
            raise EvalError(f"cdr of non-list {args[0]}", span)
        return heap.cdr_of(args[0])
    if name == "null":
        if isinstance(args[0], (VNil, VCons)):
            return TRUE if isinstance(args[0], VNil) else FALSE
        raise EvalError(f"null of non-list {args[0]}", span)
    if name == "mkpair":
        return VTuple(args[0], args[1])
    if name == "fst":
        if not isinstance(args[0], VTuple):
            raise EvalError(f"fst of non-tuple {args[0]}", span)
        return args[0].fst
    if name == "snd":
        if not isinstance(args[0], VTuple):
            raise EvalError(f"snd of non-tuple {args[0]}", span)
        return args[0].snd
    if name == "dcons":
        donor, head, tail = args
        if isinstance(donor, VCons):
            return VCons(heap.reuse(donor.cell, head, tail))
        # Donor exhausted (nil): fresh cell, as the transformed programs do
        # when they run out of reusable cells.
        heap.metrics.dcons_fallback += 1
        return VCons(heap.allocate(head, tail, site=prim))

    raise EvalError(f"unknown primitive {name!r}", span)
