"""S1 — §3.5 safety: abstract escapement dominates ground truth.

Runs the dynamic observer and the exact (oracle) semantics over a function
corpus and checks  observed ⊑ exact-consistent ⊑ abstract  throughout.
"""

from repro.bench.tables import print_table
from repro.escape.analyzer import EscapeAnalysis
from repro.escape.exact import exact_escape, observe_escape
from repro.lang.prelude import prelude_program

CASES = [
    (["append"], "append", [[1, 2, 3], [4, 5]], 1),
    (["append"], "append", [[1, 2, 3], [4, 5]], 2),
    (["rev"], "rev", [[1, 2, 3, 4]], 1),
    (["take"], "take", [2, [1, 2, 3, 4]], 2),
    (["drop"], "drop", [2, [1, 2, 3, 4]], 2),
    (["copy"], "copy", [[1, 2, 3]], 1),
    (["interleave"], "interleave", [[1, 2], [3, 4, 5]], 1),
    (["snoc"], "snoc", [[1, 2], 9], 1),
    (["isort"], "isort", [[3, 1, 2]], 1),
    (["concat"], "concat", [[[1, 2], [3], []]], 1),
    (["tails_tops"], "tails_tops", [[[1, 2], [3, 4]]], 1),
    (["ps"], "ps", [[5, 2, 7, 1, 3, 4]], 1),
]


def test_s1_safety_table(benchmark):
    def validate():
        rows = []
        for names, function, args, i in CASES:
            program = prelude_program(names)
            observed = observe_escape(program, function, args, i)
            exact = exact_escape(program, function, args, i)
            abstract = EscapeAnalysis(program).global_test(function, i)
            rows.append((function, i, observed, exact, abstract))
        return rows

    rows = benchmark.pedantic(validate, rounds=1, iterations=1)

    table = []
    for function, i, observed, exact, abstract in rows:
        # the two ground-truth formulations agree
        assert observed.escaped_levels == exact.escaped_levels
        # and the abstract result dominates them (§3.5 safety)
        if observed.escaped:
            assert not abstract.nothing_escapes
            assert observed.escaping_spines <= abstract.escaping_spines
        table.append(
            [f"{function}@{i}", str(observed.as_escapement()),
             str(exact.as_escapement()), str(abstract.result),
             "ok"]
        )

    print_table(
        ["call", "observed", "exact (oracle)", "abstract G", "observed ⊑ abstract"],
        table,
        title="§3.5 safety validation",
    )


def test_s1_observer_latency(benchmark):
    program = prelude_program(["ps"])
    observed = benchmark(observe_escape, program, "ps", [[5, 2, 7, 1, 3, 4]], 1)
    assert not observed.escaped
